// Tests for the observability layer: the metrics registry (counters, gauges,
// log-bucketed histograms with striped shards, callback series, Prometheus
// rendering), the per-request span tracing (collector nesting and overflow,
// ring retention, slowest-N, the tree dump), and their wiring through the
// InferenceEngine — including the EngineStats/scrape consistency invariant
// and the zero-allocation guarantee of the tracing-off path.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <memory>
#include <mutex>
#include <new>
#include <string>
#include <thread>
#include <vector>

#include "runtime/batcher.h"
#include "runtime/engine.h"
#include "runtime/metrics/registry.h"
#include "runtime/metrics/trace.h"
#include "runtime/registry.h"
#include "runtime/servable.h"

using namespace ascend;
using namespace ascend::runtime;
using namespace ascend::runtime::metrics;

// Global allocation counter backing the zero-allocation assertions. Counting
// is exact for this binary: gtest runs tests sequentially and the measured
// sections spawn no threads.
namespace {
std::atomic<std::uint64_t> g_allocs{0};
}

// GCC pairs the replaced operator new with the library delete and warns;
// the malloc/free pairing here is exact.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"

void* operator new(std::size_t n) {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(n)) return p;
  throw std::bad_alloc();
}

void* operator new[](std::size_t n) {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(n)) return p;
  throw std::bad_alloc();
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

#pragma GCC diagnostic pop

namespace {

// ---------------------------------------------------------------------------
// Registry: counters, gauges, identity
// ---------------------------------------------------------------------------

TEST(MetricsRegistry, CounterIdentityAndValues) {
  MetricsRegistry reg;
  Counter& a = reg.counter("reqs_total", {{"variant", "a"}});
  Counter& b = reg.counter("reqs_total", {{"variant", "b"}});
  EXPECT_NE(&a, &b);
  // Re-registration returns the same object (stable handles).
  EXPECT_EQ(&a, &reg.counter("reqs_total", {{"variant", "a"}}));
  a.add();
  a.add(4);
  EXPECT_EQ(a.value(), 5u);
  EXPECT_EQ(b.value(), 0u);
}

TEST(MetricsRegistry, GaugeSetAddMax) {
  MetricsRegistry reg;
  Gauge& g = reg.gauge("depth");
  g.set(7);
  g.add(-2);
  EXPECT_EQ(g.value(), 5);
  g.set_max(3);  // below current: no-op
  EXPECT_EQ(g.value(), 5);
  g.set_max(11);
  EXPECT_EQ(g.value(), 11);
}

TEST(MetricsRegistry, TypeMismatchThrows) {
  MetricsRegistry reg;
  reg.counter("m");
  EXPECT_THROW(reg.gauge("m"), std::invalid_argument);
  EXPECT_THROW(reg.histogram("m"), std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Histogram: bucket geometry, quantile bound, concurrent merge
// ---------------------------------------------------------------------------

TEST(Histogram, SmallValuesAreExact) {
  HistogramOptions opts;  // sub_bits = 5
  // Below 2^sub_bits each value owns a bucket: index == value.
  for (std::uint64_t v = 0; v < 32; ++v)
    EXPECT_EQ(Histogram::bucket_index(opts, v), static_cast<int>(v));
  EXPECT_EQ(Histogram::bucket_lower(opts, 17), 17u);
}

TEST(Histogram, BucketRoundTrip) {
  HistogramOptions opts;
  for (std::uint64_t v : {32ull, 33ull, 100ull, 1023ull, 1ull << 20, (1ull << 31) + 12345}) {
    const int idx = Histogram::bucket_index(opts, v);
    EXPECT_LE(Histogram::bucket_lower(opts, idx), v) << v;
    EXPECT_GT(Histogram::bucket_lower(opts, idx + 1), v) << v;
    // Relative bucket width bounds the quantile error.
    const double lo = static_cast<double>(Histogram::bucket_lower(opts, idx));
    const double hi = static_cast<double>(Histogram::bucket_lower(opts, idx + 1));
    EXPECT_LE((hi - lo) / lo, 1.0 / 32 + 1e-12) << v;
  }
}

TEST(Histogram, ClampBucketCatchesHugeValues) {
  HistogramOptions opts;
  opts.max_exp = 10;
  Histogram h(opts);
  h.record(1u << 9);
  h.record(123456789);  // >= 2^10: clamps, max stays exact
  const HistogramSnapshot snap = h.snapshot();
  EXPECT_EQ(snap.count, 2u);
  EXPECT_EQ(snap.max, 123456789u);
  EXPECT_EQ(snap.buckets.back(), 1u);
  // The top quantile reports the exact max, not a bucket bound.
  EXPECT_DOUBLE_EQ(snap.quantile(1.0), 123456789.0);
}

TEST(Histogram, QuantileErrorBoundOnUniformData) {
  Histogram h;  // sub_bits = 5 -> relative error <= 2^-5
  const std::uint64_t n = 20000;
  for (std::uint64_t v = 1; v <= n; ++v) h.record(v);
  const HistogramSnapshot snap = h.snapshot();
  EXPECT_EQ(snap.count, n);
  EXPECT_EQ(snap.sum, n * (n + 1) / 2);
  for (double q : {0.5, 0.9, 0.95, 0.99, 0.999}) {
    const double exact = 1.0 + q * static_cast<double>(n - 1);
    const double est = snap.quantile(q);
    EXPECT_LE(std::abs(est - exact) / exact, 1.0 / 32) << "q=" << q;
  }
}

TEST(Histogram, ConcurrentRecordsMergeExactly) {
  Histogram h;
  constexpr int kThreads = 4;
  constexpr std::uint64_t kPer = 10000;
  std::vector<std::thread> ts;
  for (int t = 0; t < kThreads; ++t)
    ts.emplace_back([&h] {
      for (std::uint64_t i = 0; i < kPer; ++i) h.record(i % 100 + 1);
    });
  for (auto& t : ts) t.join();
  const HistogramSnapshot snap = h.snapshot();
  EXPECT_EQ(snap.count, kThreads * kPer);
  std::uint64_t per_thread_sum = 0;
  for (std::uint64_t i = 0; i < kPer; ++i) per_thread_sum += i % 100 + 1;
  EXPECT_EQ(snap.sum, kThreads * per_thread_sum);
  EXPECT_EQ(snap.max, 100u);
}

// ---------------------------------------------------------------------------
// Prometheus rendering + typed snapshot + callbacks
// ---------------------------------------------------------------------------

TEST(MetricsRegistry, PrometheusGolden) {
  MetricsRegistry reg;
  reg.counter("requests_total", {{"variant", "a"}}, "Total requests").add(3);
  reg.gauge("queue_depth").set(2);
  Histogram& h = reg.histogram("lat_usec", {}, {}, "Latency");
  h.record(10);
  h.record(100);
  h.record(100);
  h.record(100);
  const std::string expected =
      "# HELP requests_total Total requests\n"
      "# TYPE requests_total counter\n"
      "requests_total{variant=\"a\"} 3\n"
      "# TYPE queue_depth gauge\n"
      "queue_depth 2\n"
      "# HELP lat_usec Latency\n"
      "# TYPE lat_usec summary\n"
      "lat_usec{quantile=\"0.5\"} 100.5\n"
      "lat_usec{quantile=\"0.95\"} 100.5\n"
      "lat_usec{quantile=\"0.99\"} 100.5\n"
      "lat_usec{quantile=\"0.999\"} 100.5\n"
      "lat_usec_sum 310\n"
      "lat_usec_count 4\n";
  EXPECT_EQ(reg.render_prometheus(), expected);
}

TEST(MetricsRegistry, TypedSnapshotAndLookup) {
  MetricsRegistry reg;
  reg.counter("c", {{"k", "v"}}).add(9);
  reg.histogram("h", {{"x", "1"}}).record(42);
  const RegistrySnapshot snap = reg.snapshot();
  ASSERT_EQ(snap.series.size(), 1u);
  EXPECT_EQ(snap.series[0].name, "c");
  EXPECT_EQ(snap.series[0].kind, SeriesKind::kCounter);
  EXPECT_DOUBLE_EQ(snap.series[0].value, 9.0);
  const HistogramSnapshot* h = snap.histogram("h", {{"x", "1"}});
  ASSERT_NE(h, nullptr);
  EXPECT_EQ(h->count, 1u);
  EXPECT_EQ(snap.histogram("h", {{"x", "2"}}), nullptr);
  EXPECT_EQ(snap.histogram("missing"), nullptr);
}

TEST(MetricsRegistry, CallbackSeriesSampleAndRemove) {
  MetricsRegistry reg;
  int live = 7;
  const CallbackId id = reg.register_callback(
      "live_depth", {{"k", "v"}}, SeriesKind::kGauge, [&live] { return double(live); });
  EXPECT_NE(reg.render_prometheus().find("live_depth{k=\"v\"} 7"), std::string::npos);
  live = 9;  // sampled at scrape time, not registration time
  EXPECT_NE(reg.render_prometheus().find("live_depth{k=\"v\"} 9"), std::string::npos);
  reg.remove_callback(id);
  EXPECT_EQ(reg.render_prometheus().find("live_depth{"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Span collection
// ---------------------------------------------------------------------------

TEST(SpanCollector, NestingDepthsAndOrder) {
  trace::SpanCollector c;
  trace::CollectorScope scope(&c);
  {
    trace::ScopedSpan a("outer");
    {
      trace::ScopedSpan b("inner", 3);
    }
  }
  ASSERT_EQ(c.count(), 2);
  EXPECT_STREQ(c.spans()[0].name, "outer");
  EXPECT_EQ(c.spans()[0].depth, 0);
  EXPECT_STREQ(c.spans()[1].name, "inner");
  EXPECT_EQ(c.spans()[1].index, 3);
  EXPECT_EQ(c.spans()[1].depth, 1);
  EXPECT_LE(c.spans()[0].begin, c.spans()[1].begin);
  EXPECT_LE(c.spans()[1].end, c.spans()[0].end);
}

TEST(SpanCollector, OverflowDropsAreCountedAndBalanced) {
  trace::SpanCollector c;
  for (int i = 0; i < trace::kMaxSpans + 12; ++i) {
    c.begin("s");
    c.end();
  }
  EXPECT_EQ(c.count(), trace::kMaxSpans);
  EXPECT_EQ(c.dropped(), 12);
  // Every stored span got its end stamp despite the interleaved drops.
  for (int i = 0; i < c.count(); ++i) EXPECT_GE(c.spans()[i].end, c.spans()[i].begin);
}

TEST(SpanCollector, DepthOverflowKeepsBalance) {
  trace::SpanCollector c;
  const int deep = trace::kMaxSpanDepth + 2;
  for (int i = 0; i < deep; ++i) c.begin("d");
  for (int i = 0; i < deep; ++i) c.end();
  EXPECT_EQ(c.count(), trace::kMaxSpanDepth);
  EXPECT_EQ(c.dropped(), 2);
  // After unwinding, new spans land at depth 0 again.
  c.begin("after");
  c.end();
  EXPECT_EQ(c.spans()[c.count() - 1].depth, 0);
}

TEST(ScopedSpan, NoCollectorMeansNoAllocation) {
  const std::uint64_t before = g_allocs.load();
  for (int i = 0; i < 1000; ++i) {
    trace::ScopedSpan s("hot", i);
  }
  EXPECT_EQ(g_allocs.load(), before);
  // The traced path is allocation-free too: fixed arrays, stack collector.
  trace::SpanCollector c;
  trace::CollectorScope scope(&c);
  const std::uint64_t before_traced = g_allocs.load();
  for (int i = 0; i < 40; ++i) {
    trace::ScopedSpan s("hot", i);
  }
  EXPECT_EQ(g_allocs.load(), before_traced);
}

// ---------------------------------------------------------------------------
// Tracer retention
// ---------------------------------------------------------------------------

trace::RequestTrace make_trace(std::uint64_t seq, double total_ms) {
  trace::RequestTrace t;
  t.seq = seq;
  t.set_variant("v");
  const auto base = trace::Clock::now();
  t.enqueue = base;
  t.batch_close = base;
  t.forward_start = base;
  t.forward_end = base + std::chrono::microseconds(static_cast<int64_t>(total_ms * 1000));
  t.complete = t.forward_end;
  return t;
}

TEST(Tracer, RingWrapsKeepingLastN) {
  trace::TracerOptions opts;
  opts.enabled = true;
  opts.ring_size = 4;
  opts.slowest = 0;
  trace::Tracer tracer(opts);
  for (std::uint64_t s = 0; s < 10; ++s) tracer.record(make_trace(s, 1.0));
  const auto recent = tracer.recent();  // single-threaded: one shard ring
  ASSERT_EQ(recent.size(), 4u);
  for (std::uint64_t i = 0; i < 4; ++i) EXPECT_EQ(recent[i].seq, 6 + i);  // oldest first
}

TEST(Tracer, SlowestRetentionSurvivesRingWrap) {
  trace::TracerOptions opts;
  opts.enabled = true;
  opts.ring_size = 2;  // the slow one falls out of the ring immediately
  opts.slowest = 2;
  trace::Tracer tracer(opts);
  tracer.record(make_trace(0, 50.0));  // the straggler
  for (std::uint64_t s = 1; s < 8; ++s) tracer.record(make_trace(s, double(s)));
  const auto slowest = tracer.slowest();
  ASSERT_EQ(slowest.size(), 2u);
  EXPECT_EQ(slowest[0].seq, 0u);  // slowest first
  EXPECT_EQ(slowest[1].seq, 7u);
  const auto recent = tracer.recent();
  for (const auto& t : recent) EXPECT_NE(t.seq, 0u);  // wrapped out of the ring
}

TEST(Tracer, FormatTraceRendersTree) {
  trace::RequestTrace t = make_trace(42, 10.0);
  t.set_variant("sc-lut");
  t.priority = 0;
  t.batch_size = 5;
  const auto base = t.forward_start;
  auto span = [&](const char* name, int index, int depth, int b_us, int e_us) {
    trace::Span s;
    s.name = name;
    s.index = index;
    s.depth = static_cast<std::int16_t>(depth);
    s.begin = base + std::chrono::microseconds(b_us);
    s.end = base + std::chrono::microseconds(e_us);
    return s;
  };
  t.spans[0] = span("embed", -1, 0, 0, 100);
  t.spans[1] = span("block", 0, 0, 100, 900);
  t.spans[2] = span("msa", -1, 1, 100, 500);
  t.spans[3] = span("mlp", -1, 1, 500, 900);
  t.spans[4] = span("head", -1, 0, 900, 950);
  t.num_spans = 5;
  const std::string out = trace::format_trace(t);
  EXPECT_NE(out.find("request #42"), std::string::npos);
  EXPECT_NE(out.find("variant=sc-lut"), std::string::npos);
  EXPECT_NE(out.find("priority=interactive"), std::string::npos);
  EXPECT_NE(out.find("queue wait"), std::string::npos);
  EXPECT_NE(out.find("dispatch"), std::string::npos);
  EXPECT_NE(out.find("block[0]"), std::string::npos);
  EXPECT_NE(out.find("msa"), std::string::npos);
  EXPECT_NE(out.find("├─"), std::string::npos);
  EXPECT_NE(out.find("└─ resolve"), std::string::npos);
  // Children of block[0] are indented under it with a continuation bar.
  EXPECT_LT(out.find("block[0]"), out.find("msa"));
  EXPECT_LT(out.find("msa"), out.find("mlp"));
}

// ---------------------------------------------------------------------------
// Engine wiring
// ---------------------------------------------------------------------------

/// Toy servable that emits a span per forward, so engine tests can assert
/// span capture end-to-end.
class SpanningServable final : public Servable {
 public:
  explicit SpanningServable(std::string id, std::chrono::milliseconds delay = {})
      : id_(std::move(id)), delay_(delay) {}

  nn::Tensor infer(const nn::Tensor& batch) const override {
    trace::ScopedSpan span("mock");
    if (delay_.count() > 0) std::this_thread::sleep_for(delay_);
    nn::Tensor logits({batch.dim(0), kClasses});
    for (int r = 0; r < batch.dim(0); ++r)
      logits.at(r, static_cast<int>(batch.at(r, 0)) % kClasses) = 1.0f;
    return logits;
  }
  int input_dim() const override { return kInputDim; }
  int output_dim() const override { return kClasses; }
  const std::string& variant_id() const override { return id_; }

  static constexpr int kInputDim = 4;
  static constexpr int kClasses = 8;

 private:
  std::string id_;
  std::chrono::milliseconds delay_;
};

std::vector<float> payload(float head) {
  std::vector<float> p(SpanningServable::kInputDim, 0.0f);
  p[0] = head;
  return p;
}

TEST(EngineObservability, SpanOrderingUnderConcurrentSubmits) {
  auto registry = std::make_shared<ModelRegistry>();
  registry->publish(std::make_shared<SpanningServable>("mock"));
  EngineOptions opts;
  opts.max_batch = 4;
  opts.max_delay = std::chrono::microseconds(200);
  opts.concurrent_forwards = 2;
  opts.trace.enabled = true;
  InferenceEngine engine(registry, opts);

  constexpr int kThreads = 4, kPer = 25;
  std::vector<std::thread> ts;
  for (int t = 0; t < kThreads; ++t)
    ts.emplace_back([&engine] {
      for (int i = 0; i < kPer; ++i) engine.submit(payload(float(i % 8))).get();
    });
  for (auto& t : ts) t.join();

  const auto traces = engine.tracer().recent();
  ASSERT_FALSE(traces.empty());
  for (const auto& t : traces) {
    // Lifecycle stamps are monotone...
    EXPECT_LE(t.enqueue, t.batch_close);
    EXPECT_LE(t.batch_close, t.forward_start);
    EXPECT_LE(t.forward_start, t.forward_end);
    EXPECT_LE(t.forward_end, t.complete);
    // ...and the forward's spans sit inside the forward window.
    ASSERT_GE(t.num_spans, 1);
    EXPECT_EQ(t.spans_dropped, 0);
    for (int i = 0; i < t.num_spans; ++i) {
      EXPECT_STREQ(t.spans[i].name, "mock");
      EXPECT_GE(t.spans[i].begin, t.forward_start);
      EXPECT_LE(t.spans[i].end, t.forward_end);
    }
  }
  // Every trace also made it into the slowest set's ordering invariant.
  const auto slowest = engine.tracer().slowest();
  for (std::size_t i = 1; i < slowest.size(); ++i)
    EXPECT_GE(slowest[i - 1].complete - slowest[i - 1].enqueue,
              slowest[i].complete - slowest[i].enqueue);
}

TEST(EngineObservability, TracingOffRecordsNothing) {
  auto registry = std::make_shared<ModelRegistry>();
  registry->publish(std::make_shared<SpanningServable>("mock"));
  InferenceEngine engine(registry, {});  // trace.enabled defaults to false
  for (int i = 0; i < 10; ++i) engine.submit(payload(1.0f)).get();
  EXPECT_FALSE(engine.tracer().enabled());
  EXPECT_TRUE(engine.tracer().recent().empty());
  EXPECT_TRUE(engine.tracer().slowest().empty());
}

TEST(EngineObservability, CountersMatchEngineStats) {
  auto registry = std::make_shared<ModelRegistry>();
  registry->publish(std::make_shared<SpanningServable>("mock"));
  EngineOptions opts;
  opts.max_batch = 4;
  InferenceEngine engine(registry, opts);
  for (int i = 0; i < 12; ++i) engine.submit(payload(1.0f)).get();
  // Futures resolve just before the forward worker retires its slot; wait
  // for quiescence so the in-flight gauge reads 0 deterministically.
  for (int probe = 0; probe < 500 && engine.in_flight() != 0; ++probe)
    std::this_thread::sleep_for(std::chrono::milliseconds(1));

  const EngineStats st = engine.stats();
  EXPECT_EQ(st.images, 12u);
  EXPECT_EQ(st.priority(Priority::kNormal).queued, 12u);
  EXPECT_EQ(st.priority(Priority::kNormal).served, 12u);

  // The scrape reads the same atomics through callback series.
  const RegistrySnapshot snap = engine.metrics()->snapshot();
  auto series_value = [&](const std::string& name, const Labels& labels) -> double {
    for (const auto& s : snap.series)
      if (s.name == name && s.labels == labels) return s.value;
    ADD_FAILURE() << "missing series " << series_key(name, labels);
    return -1.0;
  };
  EXPECT_DOUBLE_EQ(series_value("ascend_requests_queued_total", {{"priority", "normal"}}), 12.0);
  EXPECT_DOUBLE_EQ(series_value("ascend_requests_served_total", {{"priority", "normal"}}), 12.0);
  EXPECT_DOUBLE_EQ(series_value("ascend_images_served_total", {}), 12.0);
  EXPECT_DOUBLE_EQ(series_value("ascend_queue_depth_total", {}), 0.0);
  EXPECT_DOUBLE_EQ(series_value("ascend_in_flight_forwards", {}), 0.0);
  EXPECT_GE(series_value("ascend_peak_in_flight_forwards", {}), 1.0);

  // Latency histograms exist per (variant, priority) and saw every request.
  const HistogramSnapshot* lat = snap.histogram(
      "ascend_request_latency_usec", {{"variant", "mock"}, {"priority", "normal"}});
  ASSERT_NE(lat, nullptr);
  EXPECT_EQ(lat->count, 12u);
  const HistogramSnapshot* fill = snap.histogram("ascend_batch_fill");
  ASSERT_NE(fill, nullptr);
  EXPECT_EQ(fill->count, st.batches);
}

TEST(EngineObservability, QueueDepthAndInFlightGauges) {
  auto registry = std::make_shared<ModelRegistry>();
  registry->publish(std::make_shared<SpanningServable>("mock", std::chrono::milliseconds(20)));
  EngineOptions opts;
  opts.max_batch = 1;
  opts.max_delay = std::chrono::microseconds(100);
  opts.concurrent_forwards = 1;
  InferenceEngine engine(registry, opts);

  RequestOptions batch_req;
  batch_req.priority = Priority::kBatch;
  std::vector<std::future<Prediction>> futs;
  for (int i = 0; i < 6; ++i) futs.push_back(engine.submit(payload(1.0f), batch_req));
  // With 20 ms forwards and a single in-flight slot, a backlog must be
  // observable while the first forwards run.
  bool saw_backlog = false, saw_in_flight = false;
  for (int probe = 0; probe < 200 && !(saw_backlog && saw_in_flight); ++probe) {
    const PendingCounts q = engine.pending();
    EXPECT_EQ(q.total, q.by_priority[0] + q.by_priority[1] + q.by_priority[2]);
    if (q.priority(Priority::kBatch) > 0) saw_backlog = true;
    if (engine.in_flight() > 0) saw_in_flight = true;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_TRUE(saw_backlog);
  EXPECT_TRUE(saw_in_flight);
  for (auto& f : futs) f.get();
  EXPECT_EQ(engine.pending().total, 0u);
  // The future resolves inside the forward task, slightly before the worker
  // decrements the in-flight count — poll for the quiescent state.
  for (int probe = 0; probe < 500 && engine.in_flight() != 0; ++probe)
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  EXPECT_EQ(engine.in_flight(), 0);
}

TEST(EngineObservability, StatsConsistentUnderConcurrentScrape) {
  auto registry = std::make_shared<ModelRegistry>();
  registry->publish(std::make_shared<SpanningServable>("mock", std::chrono::milliseconds(1)));
  EngineOptions opts;
  opts.max_batch = 8;
  opts.concurrent_forwards = 2;
  InferenceEngine engine(registry, opts);

  std::atomic<bool> done{false};
  std::thread scraper([&] {
    while (!done.load()) {
      const EngineStats st = engine.stats();
      for (int p = 0; p < kNumPriorities; ++p) {
        const PriorityStats& ps = st.by_priority[static_cast<std::size_t>(p)];
        // The invariant the atomics' read order guarantees: completions can
        // never be observed ahead of admissions.
        EXPECT_LE(ps.served + ps.deadline_dropped, ps.queued);
      }
      (void)engine.metrics()->render_prometheus();  // scrape must not wedge serving
    }
  });
  std::vector<std::thread> writers;
  for (int t = 0; t < 3; ++t)
    writers.emplace_back([&engine] {
      for (int i = 0; i < 40; ++i) engine.submit(payload(1.0f)).get();
    });
  for (auto& t : writers) t.join();
  done.store(true);
  scraper.join();
  const EngineStats st = engine.stats();
  EXPECT_EQ(st.priority(Priority::kNormal).queued, 120u);
  EXPECT_EQ(st.priority(Priority::kNormal).served, 120u);
}

TEST(EngineObservability, SharedRegistryUnregistersOnEngineDestruction) {
  auto shared = std::make_shared<MetricsRegistry>();
  {
    auto registry = std::make_shared<ModelRegistry>();
    registry->publish(std::make_shared<SpanningServable>("mock"));
    EngineOptions opts;
    opts.metrics = shared;
    InferenceEngine engine(registry, opts);
    engine.submit(payload(1.0f)).get();
    EXPECT_NE(shared->render_prometheus().find("ascend_queue_depth_total"), std::string::npos);
  }
  // Engine gone: its callback series must not dangle into a scrape.
  const std::string after = shared->render_prometheus();
  EXPECT_EQ(after.find("ascend_queue_depth_total 0"), std::string::npos);
  // Histogram series the engine recorded into remain valid (registry owns them).
  EXPECT_NE(after.find("ascend_request_latency_usec"), std::string::npos);
}

}  // namespace
