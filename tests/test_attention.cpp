// Unit tests for multi-head self-attention.

#include <gtest/gtest.h>

#include "nn/attention.h"
#include "test_util.h"

using namespace ascend::nn;

TEST(Msa, ForwardShape) {
  Rng rng(1);
  MultiHeadSelfAttention msa(8, 2, rng);
  Tensor x({2 * 4, 8});
  rng.fill_normal(x, 0, 1);
  const Tensor y = msa.forward(x, /*batch=*/2, /*tokens=*/4);
  EXPECT_EQ(y.dim(0), 8);
  EXPECT_EQ(y.dim(1), 8);
  EXPECT_THROW(msa.forward(Tensor({7, 8}), 2, 4), std::invalid_argument);
  EXPECT_THROW(MultiHeadSelfAttention(7, 2, rng), std::invalid_argument);
}

TEST(Msa, GradCheckExactSoftmax) {
  Rng rng(2);
  MultiHeadSelfAttention msa(6, 2, rng);
  Tensor x({1 * 3, 6});
  rng.fill_normal(x, 0, 0.7);
  Tensor gy({3, 6});
  rng.fill_normal(gy, 0, 1);

  auto loss = [&]() {
    const Tensor y = msa.forward(x, 1, 3);
    double l = 0;
    for (std::size_t i = 0; i < y.size(); ++i) l += y[i] * gy[i];
    return l;
  };
  std::vector<Param*> ps;
  msa.collect_params(ps);
  for (Param* p : ps) p->zero_grad();
  (void)msa.forward(x, 1, 3);
  const Tensor gx = msa.backward(gy);
  EXPECT_LT(ascend::testing::max_grad_error(x, loss, gx), 4e-2);
  // Also grad-check one weight matrix.
  EXPECT_LT(ascend::testing::max_grad_error(msa.qkv().weight().value, loss,
                                            msa.qkv().weight().grad),
            4e-2);
}

TEST(Msa, GradCheckApproxSoftmax) {
  Rng rng(3);
  MultiHeadSelfAttention msa(4, 1, rng, /*approx_k=*/2);
  msa.set_softmax_kind(SoftmaxKind::kApprox);
  Tensor x({3, 4});
  rng.fill_normal(x, 0, 0.7);
  Tensor gy({3, 4});
  rng.fill_normal(gy, 0, 1);

  auto loss = [&]() {
    const Tensor y = msa.forward(x, 1, 3);
    double l = 0;
    for (std::size_t i = 0; i < y.size(); ++i) l += y[i] * gy[i];
    return l;
  };
  (void)msa.forward(x, 1, 3);
  const Tensor gx = msa.backward(gy);
  EXPECT_LT(ascend::testing::max_grad_error(x, loss, gx), 4e-2);
}

TEST(Msa, ApproxDiffersFromExact) {
  Rng rng(4);
  MultiHeadSelfAttention msa(8, 2, rng, 2);
  Tensor x({4, 8});
  rng.fill_normal(x, 0, 1.0);
  const Tensor exact = msa.forward(x, 1, 4);
  msa.set_softmax_kind(SoftmaxKind::kApprox);
  const Tensor approx = msa.forward(x, 1, 4);
  double diff = 0;
  for (std::size_t i = 0; i < exact.size(); ++i) diff += std::fabs(exact[i] - approx[i]);
  EXPECT_GT(diff, 1e-4);  // k=2 truncation is visible
  EXPECT_LT(diff / static_cast<double>(exact.size()), 3.0);  // but not wild
}

TEST(Msa, SoftmaxHookOverrides) {
  Rng rng(5);
  MultiHeadSelfAttention msa(4, 1, rng);
  Tensor x({2, 4});
  rng.fill_normal(x, 0, 1);
  bool called = false;
  msa.set_softmax_hook([&called](const Tensor& scores) {
    called = true;
    Tensor uniform(scores.shape(), 1.0f / scores.dim(1));
    return uniform;
  });
  (void)msa.forward(x, 1, 2);
  EXPECT_TRUE(called);
  EXPECT_THROW(msa.backward(Tensor({2, 4})), std::logic_error);
  msa.clear_softmax_hook();
  (void)msa.forward(x, 1, 2);
  EXPECT_NO_THROW(msa.backward(Tensor({2, 4})));
}
