// Cross-cutting equivalence tests: the properties that let the fast
// count-level network evaluation stand in for the bit-level circuits.

#include <gtest/gtest.h>

#include <random>

#include "nn/quant.h"
#include "nn/rng.h"
#include "sc/softmax_iter.h"
#include "sc/therm_arith.h"

using namespace ascend;
using namespace ascend::sc;

// ---------------------------------------------------------------------------
// SC linear algebra is exact on quantized values: a dot product computed with
// truth-table multipliers and a BSN adder equals the float dot product of the
// quantized operands — the reason vit/sc_inference only needs to emulate the
// nonlinear blocks.
// ---------------------------------------------------------------------------

TEST(CircuitEquivalence, ThermDotProductIsExact) {
  std::mt19937 rng(1);
  std::uniform_int_distribution<int> wlevel(0, 2), alevel(0, 2);
  const double alpha_w = 0.37, alpha_a = 0.61;
  for (int trial = 0; trial < 50; ++trial) {
    const int n = 2 + static_cast<int>(rng() % 30);
    std::vector<ThermValue> prods;
    double expect = 0.0;
    for (int i = 0; i < n; ++i) {
      const ThermValue w{wlevel(rng), 2, alpha_w};  // ternary weight
      const ThermValue a{alevel(rng), 2, alpha_a};  // ternary activation
      prods.push_back(mult(w, a));
      expect += w.value() * a.value();
    }
    const ThermValue acc = add(prods);
    EXPECT_NEAR(acc.value(), expect, 1e-12);
  }
}

TEST(CircuitEquivalence, LsqValuesLandOnThermGrid) {
  // Every LSQ-quantized value is representable exactly as a thermometer
  // number with alpha = step and BSL = quantizer levels - 1.
  nn::LsqQuantizer q(nn::QuantSpec::from_bsl(2));
  nn::Rng nrng(2);
  nn::Tensor x({64, 4});
  nrng.fill_normal(x, 0, 1);
  const nn::Tensor y = q.forward(x);
  const double step = q.step();
  for (std::size_t i = 0; i < y.size(); ++i) {
    const ThermValue t = ThermValue::encode(y[i], 2, step);
    EXPECT_NEAR(t.value(), y[i], 1e-6);
  }
}

TEST(CircuitEquivalence, ResidualAccumulationExactOnR16Grid) {
  // W2*A2 products re-gridded onto the R16 residual grid, then accumulated:
  // the only inexactness is the documented re-scaler quantization.
  const double alpha_r = 0.25;
  std::mt19937 rng(3);
  for (int trial = 0; trial < 30; ++trial) {
    const ThermValue p1{static_cast<int>(rng() % 3), 2, 0.5};
    const ThermValue p2{static_cast<int>(rng() % 3), 2, 0.5};
    const ThermValue r1 = rescale(mult(p1, ThermValue{2, 2, 1.0}), 16, alpha_r);
    const ThermValue r2 = rescale(mult(p2, ThermValue{2, 2, 1.0}), 16, alpha_r);
    const ThermValue sum = add({r1, r2});
    EXPECT_NEAR(sum.value(), r1.value() + r2.value(), 1e-12);
    EXPECT_LE(std::fabs(r1.value() - p1.value()), alpha_r + 1e-12);
  }
}

// ---------------------------------------------------------------------------
// Full softmax block: bit-level == count-level across a configuration sweep.
// ---------------------------------------------------------------------------

struct SoftmaxEqCase {
  int m, k, bx, by, s1, s2, e;
  double ax, ay;
};

class SoftmaxBitCountEquivalence : public ::testing::TestWithParam<SoftmaxEqCase> {};

TEST_P(SoftmaxBitCountEquivalence, Exact) {
  const SoftmaxEqCase c = GetParam();
  SoftmaxIterConfig cfg;
  cfg.m = c.m;
  cfg.k = c.k;
  cfg.bx = c.bx;
  cfg.by = c.by;
  cfg.s1 = c.s1;
  cfg.s2 = c.s2;
  cfg.align_expand = c.e;
  cfg.alpha_x = c.ax;
  cfg.alpha_y = c.ay;
  const auto rows = sample_attention_logits(cfg.m, 6, 0xE0);
  for (const auto& row : rows) {
    const auto fast = softmax_iterative_sc(row, cfg);
    const auto bits = softmax_iterative_sc_bits(row, cfg);
    for (std::size_t i = 0; i < fast.size(); ++i) EXPECT_DOUBLE_EQ(fast[i], bits[i]);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Configs, SoftmaxBitCountEquivalence,
    ::testing::Values(SoftmaxEqCase{4, 2, 2, 4, 2, 2, 2, 2.0, 0.25},
                      SoftmaxEqCase{8, 3, 4, 8, 4, 4, 4, 1.0, 0.125},
                      SoftmaxEqCase{8, 2, 4, 8, 8, 2, 2, 1.5, 0.125},
                      SoftmaxEqCase{8, 4, 4, 4, 4, 2, 4, 1.0, 0.125},
                      SoftmaxEqCase{16, 3, 2, 4, 8, 2, 2, 2.0, 1.0 / 16},
                      SoftmaxEqCase{8, 3, 4, 8, 4, 4, 4, 0.8, 0.15},
                      SoftmaxEqCase{8, 1, 4, 8, 4, 4, 4, 1.0, 0.125}));

// ---------------------------------------------------------------------------
// Floor vs centered tap ablation is visible but bounded.
// ---------------------------------------------------------------------------

TEST(CircuitEquivalence, TapPlacementChangesResultsBoundedly) {
  SoftmaxIterConfig cfg;
  cfg.m = 16;
  cfg.k = 3;
  cfg.bx = 8;
  cfg.by = 16;
  cfg.s1 = 16;
  cfg.s2 = 4;
  cfg.alpha_x = 0.75;
  cfg.alpha_y = 1.0 / 16;
  cfg.centered_subsample = true;
  const double centered = softmax_sc_mae(cfg, 24, 6);
  cfg.centered_subsample = false;
  const double floored = softmax_sc_mae(cfg, 24, 6);
  EXPECT_LE(centered, floored + 1e-9);           // rounding never hurts on average
  EXPECT_LT(floored, 4.0 * centered + 0.05);     // and floor is not catastrophic
}

// ---------------------------------------------------------------------------
// Chained re-scaling keeps values within the accumulated grid error.
// ---------------------------------------------------------------------------

class RescaleChain : public ::testing::TestWithParam<int> {};

TEST_P(RescaleChain, ErrorStaysBounded) {
  std::mt19937 rng(GetParam());
  for (int trial = 0; trial < 20; ++trial) {
    const ThermValue start{static_cast<int>(rng() % 33), 32, 0.05};
    ThermValue v = start;
    double max_alpha = v.alpha;
    for (int hop = 0; hop < 4; ++hop) {
      const int lt = 2 * (4 + static_cast<int>(rng() % 14));
      const double at = 0.03 * (1 + static_cast<int>(rng() % 8));
      // Keep the value in range to avoid saturation (tested separately).
      if (std::fabs(v.value()) > at * lt / 2.0 - at) break;
      v = rescale(v, lt, at);
      max_alpha = std::max(max_alpha, at);
    }
    EXPECT_LE(std::fabs(v.value() - start.value()), 4.0 * 1.5 * max_alpha + 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RescaleChain, ::testing::Range(50, 58));
