// Unit tests for the synthetic vision dataset.

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "vit/dataset.h"

using namespace ascend::vit;

TEST(SyntheticVision, ShapesAndLabels) {
  const Dataset d = make_synthetic_vision(50, 10, 1);
  EXPECT_EQ(d.size(), 50);
  EXPECT_EQ(d.images.dim(1), 3 * 32 * 32);
  EXPECT_EQ(d.classes, 10);
  for (int label : d.labels) {
    EXPECT_GE(label, 0);
    EXPECT_LT(label, 10);
  }
}

TEST(SyntheticVision, DeterministicPerSeed) {
  const Dataset a = make_synthetic_vision(10, 10, 42);
  const Dataset b = make_synthetic_vision(10, 10, 42);
  EXPECT_EQ(a.labels, b.labels);
  for (std::size_t i = 0; i < a.images.size(); ++i) EXPECT_FLOAT_EQ(a.images[i], b.images[i]);
  const Dataset c = make_synthetic_vision(10, 10, 43);
  bool any_diff = false;
  for (std::size_t i = 0; i < a.images.size() && !any_diff; ++i)
    any_diff = a.images[i] != c.images[i];
  EXPECT_TRUE(any_diff);
}

TEST(SyntheticVision, PixelRangeBounded) {
  const Dataset d = make_synthetic_vision(20, 10, 7);
  for (std::size_t i = 0; i < d.images.size(); ++i) {
    EXPECT_GT(d.images[i], -3.0f);
    EXPECT_LT(d.images[i], 3.0f);
  }
}

TEST(SyntheticVision, ClassesAreSeparable) {
  // Nearest-centroid classification on raw pixels must beat chance by a wide
  // margin — otherwise the accuracy benches would be meaningless.
  const int classes = 10;
  const Dataset train = make_synthetic_vision(400, classes, 11);
  const Dataset test = make_synthetic_vision(200, classes, 12);
  const int pix = 3 * 32 * 32;

  std::vector<std::vector<double>> centroid(classes, std::vector<double>(pix, 0.0));
  std::vector<int> count(classes, 0);
  for (int i = 0; i < train.size(); ++i) {
    const int c = train.labels[static_cast<std::size_t>(i)];
    ++count[static_cast<std::size_t>(c)];
    for (int p = 0; p < pix; ++p)
      centroid[static_cast<std::size_t>(c)][static_cast<std::size_t>(p)] +=
          train.images[static_cast<std::size_t>(i) * pix + p];
  }
  for (int c = 0; c < classes; ++c)
    for (int p = 0; p < pix; ++p)
      centroid[static_cast<std::size_t>(c)][static_cast<std::size_t>(p)] /=
          std::max(count[static_cast<std::size_t>(c)], 1);

  int correct = 0;
  for (int i = 0; i < test.size(); ++i) {
    double best = 1e300;
    int best_c = 0;
    for (int c = 0; c < classes; ++c) {
      double dist = 0;
      for (int p = 0; p < pix; ++p) {
        const double d = test.images[static_cast<std::size_t>(i) * pix + p] -
                         centroid[static_cast<std::size_t>(c)][static_cast<std::size_t>(p)];
        dist += d * d;
      }
      if (dist < best) {
        best = dist;
        best_c = c;
      }
    }
    correct += (best_c == test.labels[static_cast<std::size_t>(i)]) ? 1 : 0;
  }
  const double acc = static_cast<double>(correct) / test.size();
  EXPECT_GT(acc, 0.2);  // chance = 0.1
}

TEST(SyntheticVision, TwentyClassVariantHarder) {
  const Dataset d = make_synthetic_vision(30, 20, 5);
  EXPECT_EQ(d.classes, 20);
  int max_label = 0;
  for (int l : d.labels) max_label = std::max(max_label, l);
  EXPECT_GT(max_label, 9);  // uses the extended label space
}

TEST(TakeBatch, GathersRows) {
  const Dataset d = make_synthetic_vision(10, 10, 3);
  const Batch b = take_batch(d, {3, 7});
  EXPECT_EQ(b.images.dim(0), 2);
  EXPECT_EQ(b.labels.size(), 2u);
  EXPECT_EQ(b.labels[0], d.labels[3]);
  const int pix = 3 * 32 * 32;
  for (int p = 0; p < pix; ++p)
    EXPECT_FLOAT_EQ(b.images[static_cast<std::size_t>(p)],
                    d.images[3 * static_cast<std::size_t>(pix) + p]);
  EXPECT_THROW(take_batch(d, {99}), std::out_of_range);
}

TEST(SyntheticVision, RejectsBadArgs) {
  EXPECT_THROW(make_synthetic_vision(0, 10, 1), std::invalid_argument);
  EXPECT_THROW(make_synthetic_vision(5, 1, 1), std::invalid_argument);
}
