// Chaos/robustness suite for the fault-injection framework and the
// self-healing serving stack (docs/robustness.md):
//   * failpoint mechanics — spec parsing, arm/fire/auto-disarm counters,
//     seeded deterministic probability draws, parked-spec adoption, the
//     delay and err actions, and zero allocations on the disabled path
//     (this target links alloc_interpose, see CMakeLists.txt);
//   * injection at each serving site: batcher.enqueue, pool.task,
//     engine.infer, loader.decode, ckpt.*, registry.publish, and the front
//     door's serve.accept / serve.read / serve.write / router.route — every
//     fault surfaces as a typed error (or drops only the faulted
//     connection), never a crash or a silent wrong answer;
//   * self-healing: retry with backoff, fallback-variant degradation, the
//     forward watchdog, and canary-validated hot-swap rollback;
//   * the tentpole claim — a seeded randomized fault schedule under
//     concurrent mixed-priority traffic loses no request (every submit
//     resolves to success or a typed error) and the error rate returns to
//     zero once faults clear.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <future>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "nn/rng.h"
#include "nn/tensor.h"
#include "runtime/alloc_count.h"
#include "runtime/arena.h"
#include "runtime/batcher.h"
#include "runtime/engine.h"
#include "runtime/failpoint.h"
#include "runtime/loader.h"
#include "runtime/registry.h"
#include "runtime/servable.h"
#include "serialize/checkpoint.h"
#include "serialize/model_io.h"
#include "serve/client.h"
#include "serve/protocol.h"
#include "serve/server.h"
#include "serve/shard_set.h"
#include "vit/model.h"
#include "vit/servable.h"

using namespace ascend;
using namespace ascend::runtime;
using serialize::CheckpointError;

namespace {

/// Deterministic toy servable (the test_servable idiom): label =
/// (payload[0] + bias) % kClasses, logits one-hot, optional per-forward
/// delay for watchdog tests.
class MockServable final : public Servable {
 public:
  MockServable(std::string id, int bias = 0, std::chrono::milliseconds delay = {})
      : id_(std::move(id)), bias_(bias), delay_(delay) {}

  nn::Tensor infer(const nn::Tensor& batch) const override {
    if (delay_.count() > 0) std::this_thread::sleep_for(delay_);
    nn::Tensor logits({batch.dim(0), kClasses});
    std::lock_guard<std::mutex> lock(mu_);
    forwards_ += 1;
    for (int r = 0; r < batch.dim(0); ++r) {
      const int label = (static_cast<int>(batch.at(r, 0)) + bias_) % kClasses;
      logits.at(r, label) = 1.0f;
    }
    return logits;
  }
  int input_dim() const override { return kInputDim; }
  int output_dim() const override { return kClasses; }
  const std::string& variant_id() const override { return id_; }

  int forwards() const {
    std::lock_guard<std::mutex> lock(mu_);
    return forwards_;
  }

  static constexpr int kInputDim = 4;
  static constexpr int kClasses = 8;

 private:
  std::string id_;
  int bias_;
  std::chrono::milliseconds delay_;
  mutable std::mutex mu_;
  mutable int forwards_ = 0;
};

std::vector<float> payload(float head) {
  std::vector<float> p(MockServable::kInputDim, 0.0f);
  p[0] = head;
  return p;
}

EngineOptions quick_opts() {
  EngineOptions o;
  o.max_batch = 4;
  o.max_delay = std::chrono::microseconds{500};
  o.concurrent_forwards = 1;
  return o;
}

/// Probe batch for canary validation: B rows with distinct head values.
nn::Tensor golden_batch(int rows) {
  nn::Tensor t({rows, MockServable::kInputDim});
  for (int r = 0; r < rows; ++r) t.at(r, 0) = static_cast<float>(r + 1);
  return t;
}

/// Unit-test site living at static storage (Sites register for the process
/// lifetime; a stack-local Site would dangle in the registry).
failpoint::Site g_unit_site{"test.unit"};

/// Every chaos test starts and ends with a clean site registry — armed specs
/// must never leak into a neighbouring test.
class ChaosTest : public ::testing::Test {
 protected:
  void SetUp() override { failpoint::disarm_all(); }
  void TearDown() override { failpoint::disarm_all(); }
};

}  // namespace

// ---------------------------------------------------------------------------
// Spec grammar
// ---------------------------------------------------------------------------

TEST(FailpointSpec, ParsesModifiersAndActions) {
  const failpoint::FailSpec s = failpoint::parse_spec("p0.25,after2,n5,seed7,throw");
  EXPECT_EQ(s.action, failpoint::Action::kThrow);
  EXPECT_DOUBLE_EQ(s.probability, 0.25);
  EXPECT_EQ(s.skip, 2u);
  EXPECT_EQ(s.max_fires, 5u);
  EXPECT_EQ(s.seed, 7u);

  const failpoint::FailSpec d = failpoint::parse_spec("delay15");
  EXPECT_EQ(d.action, failpoint::Action::kDelay);
  EXPECT_EQ(d.delay_ms, 15);

  const failpoint::FailSpec o = failpoint::parse_spec("once,err");
  EXPECT_EQ(o.action, failpoint::Action::kError);
  EXPECT_EQ(o.max_fires, 1u);

  // Pure modifiers keep the default throw action.
  EXPECT_EQ(failpoint::parse_spec("p0.5").action, failpoint::Action::kThrow);
}

TEST(FailpointSpec, RejectsMalformedInput) {
  EXPECT_THROW(failpoint::parse_spec("p1.5"), std::invalid_argument);
  EXPECT_THROW(failpoint::parse_spec("p-0.1"), std::invalid_argument);
  EXPECT_THROW(failpoint::parse_spec("n0"), std::invalid_argument);
  EXPECT_THROW(failpoint::parse_spec("bogus"), std::invalid_argument);
  EXPECT_THROW(failpoint::parse_spec("throw,,err"), std::invalid_argument);
  EXPECT_THROW((void)failpoint::arm("engine.infer", "delay-3"), std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Site mechanics
// ---------------------------------------------------------------------------

TEST_F(ChaosTest, ArmedSiteFiresCountsAndAutoDisarms) {
  EXPECT_FALSE(g_unit_site.armed());
  EXPECT_TRUE(failpoint::arm("test.unit", "n2,throw"));
  EXPECT_TRUE(g_unit_site.armed());

  auto hit = [] { ASCEND_FAILPOINT(g_unit_site); };
  EXPECT_THROW(hit(), failpoint::InjectedFaultError);
  EXPECT_THROW(hit(), failpoint::InjectedFaultError);
  // n2 exhausted: the site disarmed itself and the hot path is quiet again.
  EXPECT_FALSE(g_unit_site.armed());
  hit();

  const failpoint::SiteStats stats = g_unit_site.stats();
  EXPECT_EQ(stats.name, "test.unit");
  EXPECT_EQ(stats.hits, 2u);
  EXPECT_EQ(stats.fires, 2u);

  // The registry snapshot carries the same counters.
  bool found = false;
  for (const failpoint::SiteStats& s : failpoint::sites())
    if (s.name == "test.unit") {
      found = true;
      EXPECT_EQ(s.fires, 2u);
    }
  EXPECT_TRUE(found);
}

TEST_F(ChaosTest, SkipModifierPassesEarlyHitsThrough) {
  failpoint::arm("test.unit", "after3,once,throw");
  auto hit = [] { ASCEND_FAILPOINT(g_unit_site); };
  for (int i = 0; i < 3; ++i) hit();  // skipped hits pass clean
  EXPECT_THROW(hit(), failpoint::InjectedFaultError);
  EXPECT_FALSE(g_unit_site.armed());
}

TEST_F(ChaosTest, SeededProbabilityDrawIsReproducible) {
  auto fire_pattern = [] {
    std::vector<bool> fired;
    for (int i = 0; i < 64; ++i) {
      bool f = false;
      try {
        ASCEND_FAILPOINT(g_unit_site);
      } catch (const failpoint::InjectedFaultError&) {
        f = true;
      }
      fired.push_back(f);
    }
    return fired;
  };
  failpoint::arm("test.unit", "p0.5,seed42,throw");
  const std::vector<bool> first = fire_pattern();
  failpoint::arm("test.unit", "p0.5,seed42,throw");  // re-arm resets the RNG
  EXPECT_EQ(fire_pattern(), first) << "same seed must replay the same schedule";

  int fires = 0;
  for (const bool f : first) fires += f ? 1 : 0;
  EXPECT_GT(fires, 0);
  EXPECT_LT(fires, 64);

  failpoint::arm("test.unit", "p0,throw");
  for (int i = 0; i < 64; ++i) ASCEND_FAILPOINT(g_unit_site);  // p0 never fires
}

TEST_F(ChaosTest, DelayActionStallsWithoutFailing) {
  failpoint::arm("test.unit", "once,delay25");
  const auto start = std::chrono::steady_clock::now();
  ASCEND_FAILPOINT(g_unit_site);  // sleeps, then continues
  const auto elapsed = std::chrono::steady_clock::now() - start;
  EXPECT_GE(elapsed, std::chrono::milliseconds{25});
  EXPECT_FALSE(g_unit_site.armed());
}

TEST_F(ChaosTest, ErrActionRunsTheNativeErrorPath) {
  failpoint::arm("test.unit", "once,err");
  bool native_path = false;
  ASCEND_FAILPOINT_OR(g_unit_site, native_path = true);
  EXPECT_TRUE(native_path);
  // Through the plain macro, err is promoted to InjectedFaultError.
  failpoint::arm("test.unit", "once,err");
  EXPECT_THROW([] { ASCEND_FAILPOINT(g_unit_site); }(), failpoint::InjectedFaultError);
}

TEST_F(ChaosTest, ParkedSpecIsAdoptedByLateRegisteringSite) {
  // Arming a name with no live site parks the spec — exactly how env specs
  // reach sites that register later at static init.
  EXPECT_FALSE(failpoint::arm("test.parked", "once,throw"));
  static failpoint::Site parked_site{"test.parked"};  // first run constructs it here
  EXPECT_TRUE(parked_site.armed()) << "registration must adopt the parked spec";
  EXPECT_THROW([] { ASCEND_FAILPOINT(parked_site); }(), failpoint::InjectedFaultError);
  // Re-arming the now-live site reports a live adoption.
  EXPECT_TRUE(failpoint::arm("test.parked", "once,throw"));
  failpoint::disarm("test.parked");
  EXPECT_FALSE(parked_site.armed());
}

// ---------------------------------------------------------------------------
// Injection at each serving site -> typed errors, engine keeps serving
// ---------------------------------------------------------------------------

TEST_F(ChaosTest, EnqueueInjectionFailsFastAtSubmit) {
  auto registry = std::make_shared<ModelRegistry>();
  registry->publish(std::make_shared<MockServable>("m"));
  InferenceEngine engine(registry, quick_opts());

  failpoint::arm("batcher.enqueue", "once,throw");
  EXPECT_THROW((void)engine.submit(payload(1.0f)), failpoint::InjectedFaultError);
  EXPECT_EQ(engine.submit(payload(2.0f)).get().label, 2);
}

TEST_F(ChaosTest, PoolTaskInjectionResolvesTheBatchWithATypedError) {
  auto registry = std::make_shared<ModelRegistry>();
  registry->publish(std::make_shared<MockServable>("m"));
  InferenceEngine engine(registry, quick_opts());

  // The fault fires inside the pool's packaged task, before the forward body
  // runs: the BatchJob destructor must still resolve every promise.
  failpoint::arm("pool.task", "once,throw");
  auto fut = engine.submit(payload(1.0f));
  EXPECT_THROW(fut.get(), failpoint::InjectedFaultError);
  EXPECT_EQ(engine.submit(payload(2.0f)).get().label, 2);
}

TEST_F(ChaosTest, LoaderDecodeFaultSurfacesThroughNext) {
  failpoint::arm("loader.decode", "once,throw");
  LoaderOptions opts;
  opts.workers = 1;
  opts.prefetch_batches = 2;
  opts.batch_size = 2;
  Loader loader([](int index, float* dst) { dst[0] = static_cast<float>(index); },
                /*num_samples=*/8, /*sample_dim=*/1, opts);
  EXPECT_THROW(
      {
        for (int i = 0; i < 4; ++i) loader.recycle(loader.next());
      },
      failpoint::InjectedFaultError);
}

TEST_F(ChaosTest, RegistryPublishInjectionLeavesTheRegistryUnchanged) {
  ModelRegistry registry;
  failpoint::arm("registry.publish", "once,throw");
  EXPECT_THROW(registry.publish(std::make_shared<MockServable>("m")),
               failpoint::InjectedFaultError);
  // The fault fired before any mutation: no partially-published entry.
  EXPECT_FALSE(registry.contains("m"));
  EXPECT_EQ(registry.publishes(), 0u);
  EXPECT_EQ(registry.publish(std::make_shared<MockServable>("m")), 1u);
  EXPECT_EQ(registry.publishes(), 1u);
}

TEST_F(ChaosTest, CheckpointSitesRaiseTypedCheckpointErrors) {
  vit::VitConfig top;
  top.image_size = 16;
  top.patch_size = 8;
  top.dim = 16;
  top.layers = 1;
  top.heads = 2;
  top.mlp_ratio = 2;
  top.classes = 4;
  vit::VisionTransformer model(top, 17);
  const std::string path = testing::TempDir() + "chaos_ckpt.ckpt";
  model.save(path);

  ModelRegistry registry;
  EXPECT_EQ(registry.register_from_file("fp32", path, VariantKind::kFp32), 1u);
  const std::shared_ptr<const Servable> incumbent = registry.get("fp32");

  // err action at ckpt.crc: the site raises its *native* typed error.
  failpoint::arm("ckpt.crc", "once,err");
  try {
    registry.register_from_file("fp32", path, VariantKind::kFp32);
    FAIL() << "expected CheckpointError";
  } catch (const CheckpointError& e) {
    EXPECT_EQ(e.kind(), CheckpointError::Kind::kCorrupt);
    EXPECT_NE(std::string(e.what()).find("injected checksum fault"), std::string::npos);
  }
  // The failed swap counted as a rollback and the incumbent kept serving.
  EXPECT_EQ(registry.rollbacks(), 1u);
  EXPECT_EQ(registry.generation("fp32"), 1u);
  EXPECT_EQ(registry.get("fp32").get(), incumbent.get());

  failpoint::arm("ckpt.mmap", "once,err");
  try {
    registry.register_from_file("fp32", path, VariantKind::kFp32);
    FAIL() << "expected CheckpointError";
  } catch (const CheckpointError& e) {
    EXPECT_EQ(e.kind(), CheckpointError::Kind::kIo);
  }
  EXPECT_EQ(registry.rollbacks(), 2u);
  EXPECT_EQ(registry.generation("fp32"), 1u);

  // With the sites quiet the same call swaps cleanly.
  EXPECT_EQ(registry.register_from_file("fp32", path, VariantKind::kFp32), 2u);
}

// ---------------------------------------------------------------------------
// Self-healing: retry, fallback degradation, watchdog
// ---------------------------------------------------------------------------

TEST_F(ChaosTest, RetryRecoversFromTransientForwardFaults) {
  auto registry = std::make_shared<ModelRegistry>();
  registry->publish(std::make_shared<MockServable>("m"));
  InferenceEngine engine(registry, quick_opts());

  failpoint::arm("engine.infer", "n2,throw");  // two transient faults, then healthy
  RequestOptions opts;
  opts.retry.max_attempts = 3;
  opts.retry.backoff = std::chrono::microseconds{100};
  const Prediction p = engine.submit(payload(3.0f), opts).get();
  EXPECT_EQ(p.label, 3);
  EXPECT_EQ(p.attempts, 3);
  EXPECT_FALSE(p.degraded);
  EXPECT_EQ(p.variant, "m");

  const EngineStats s = engine.stats();
  EXPECT_EQ(s.priority(Priority::kNormal).retries, 2u);
  EXPECT_EQ(s.priority(Priority::kNormal).served, 1u);
  EXPECT_EQ(s.priority(Priority::kNormal).fallback_served, 0u);
}

TEST_F(ChaosTest, ExhaustedRetriesDegradeToTheFallbackVariant) {
  auto registry = std::make_shared<ModelRegistry>();
  registry->publish(std::make_shared<MockServable>("primary", /*bias=*/0));
  registry->publish(std::make_shared<MockServable>("fb", /*bias=*/1));
  EngineOptions eopts = quick_opts();
  eopts.default_variant = "primary";
  InferenceEngine engine(registry, eopts);

  failpoint::arm("engine.infer", "n2,throw");  // both primary attempts fail
  RequestOptions opts;
  opts.retry.max_attempts = 2;
  opts.retry.backoff = std::chrono::microseconds{100};
  opts.retry.fallback_variant = "fb";
  const Prediction p = engine.submit(payload(3.0f), opts).get();
  EXPECT_TRUE(p.degraded);
  EXPECT_EQ(p.variant, "fb");
  EXPECT_EQ(p.label, 4) << "the fallback's bias must show in the answer";
  EXPECT_EQ(p.attempts, 3);

  const EngineStats s = engine.stats();
  EXPECT_EQ(s.priority(Priority::kNormal).retries, 1u);
  EXPECT_EQ(s.priority(Priority::kNormal).fallback_served, 1u);
  EXPECT_EQ(s.priority(Priority::kNormal).served, 1u);
}

TEST_F(ChaosTest, MissingFallbackVariantFailsTyped) {
  auto registry = std::make_shared<ModelRegistry>();
  registry->publish(std::make_shared<MockServable>("m"));
  InferenceEngine engine(registry, quick_opts());

  failpoint::arm("engine.infer", "once,throw");
  RequestOptions opts;
  opts.retry.fallback_variant = "ghost";  // max_attempts 1: straight to fallback
  auto fut = engine.submit(payload(1.0f), opts);
  EXPECT_THROW(fut.get(), UnknownVariantError);

  // No fallback at all: the final primary error reaches the client.
  failpoint::arm("engine.infer", "once,throw");
  auto bare = engine.submit(payload(1.0f));
  EXPECT_THROW(bare.get(), failpoint::InjectedFaultError);

  EXPECT_EQ(engine.submit(payload(2.0f)).get().label, 2);
}

TEST_F(ChaosTest, WatchdogTripsTheWedgedForwardAndTheEngineKeepsServing) {
  auto registry = std::make_shared<ModelRegistry>();
  registry->publish(std::make_shared<MockServable>("fast"));
  registry->publish(std::make_shared<MockServable>("slow", 0, std::chrono::milliseconds{250}));
  EngineOptions eopts = quick_opts();
  eopts.default_variant = "fast";
  eopts.forward_timeout = std::chrono::milliseconds{40};
  InferenceEngine engine(registry, eopts);

  RequestOptions to_slow;
  to_slow.variant = "slow";
  auto wedged = engine.submit(payload(1.0f), to_slow);
  EXPECT_THROW(wedged.get(), WatchdogTimeoutError);

  // The trip released the concurrency slot and grew a replacement worker:
  // the engine serves on while the wedged forward still sleeps.
  EXPECT_EQ(engine.submit(payload(2.0f)).get().label, 2);
  const EngineStats s = engine.stats();
  EXPECT_GE(s.watchdog_trips, 1u);
  EXPECT_EQ(s.priority(Priority::kNormal).served, 1u)
      << "the abandoned forward's late result must be discarded, not served";
}

// ---------------------------------------------------------------------------
// Canary-validated hot-swap
// ---------------------------------------------------------------------------

TEST(CanaryPublish, DivergingCandidateRollsBackAndIncumbentKeepsServing) {
  ModelRegistry registry;
  auto v1 = std::make_shared<MockServable>("m", /*bias=*/0);
  registry.publish(v1);

  CanaryOptions canary;
  canary.golden_input = golden_batch(3);
  canary.require_label_match = true;

  // bias=1 shifts every argmax: the canary must reject it.
  const PublishResult rejected =
      registry.publish_checked(std::make_shared<MockServable>("m", /*bias=*/1), canary);
  EXPECT_FALSE(rejected.published);
  EXPECT_EQ(rejected.generation, 1u) << "the incumbent's generation is unchanged";
  EXPECT_FALSE(rejected.error.empty());
  EXPECT_EQ(registry.rollbacks(), 1u);
  EXPECT_EQ(registry.get("m").get(), v1.get()) << "incumbent must keep serving bit-exact";

  // A label-identical candidate passes the same canary and goes live.
  const PublishResult accepted =
      registry.publish_checked(std::make_shared<MockServable>("m", /*bias=*/0), canary);
  EXPECT_TRUE(accepted.published);
  EXPECT_EQ(accepted.generation, 2u);
  EXPECT_TRUE(accepted.error.empty());
  EXPECT_EQ(registry.rollbacks(), 1u);
}

TEST(CanaryPublish, LogitDivergenceBudgetIsEnforced) {
  ModelRegistry registry;
  registry.publish(std::make_shared<MockServable>("m", /*bias=*/0));

  CanaryOptions canary;
  canary.golden_input = golden_batch(2);
  canary.max_abs_logit_diff = 0.5;  // one-hot shift diverges by exactly 1.0
  EXPECT_FALSE(
      registry.publish_checked(std::make_shared<MockServable>("m", /*bias=*/1), canary).published);

  canary.max_abs_logit_diff = 1.0;  // now inside the budget
  EXPECT_TRUE(
      registry.publish_checked(std::make_shared<MockServable>("m", /*bias=*/1), canary).published);
  EXPECT_EQ(registry.rollbacks(), 1u);
}

TEST(CanaryPublish, FirstPublishValidatesTheCandidateItself) {
  ModelRegistry registry;
  CanaryOptions canary;
  canary.golden_input = golden_batch(2);
  canary.require_label_match = true;  // no incumbent: only the self-checks run
  const PublishResult r =
      registry.publish_checked(std::make_shared<MockServable>("m"), canary);
  EXPECT_TRUE(r.published);
  EXPECT_EQ(r.generation, 1u);
  EXPECT_THROW((void)registry.publish_checked(nullptr, canary), std::invalid_argument);
}

// ---------------------------------------------------------------------------
// The tentpole: seeded chaos schedule under concurrent mixed-priority traffic
// ---------------------------------------------------------------------------

TEST_F(ChaosTest, SeededScheduleUnderMixedTrafficLosesNoRequestAndRecovers) {
  auto registry = std::make_shared<ModelRegistry>();
  registry->publish(std::make_shared<MockServable>("primary", /*bias=*/0));
  registry->publish(std::make_shared<MockServable>("fb", /*bias=*/1));
  EngineOptions eopts;
  eopts.max_batch = 8;
  eopts.max_delay = std::chrono::microseconds{200};
  eopts.concurrent_forwards = 2;
  eopts.default_variant = "primary";
  eopts.forward_timeout = std::chrono::milliseconds{2000};  // must not trip a healthy mock
  eopts.max_pending = 64;
  eopts.overflow = OverflowPolicy::kReject;
  InferenceEngine engine(registry, eopts);

  const std::uint64_t fires_before = failpoint::total_fires();
  failpoint::arm("engine.infer", "p0.3,seed11,throw");
  failpoint::arm("batcher.enqueue", "p0.05,seed12,throw");
  failpoint::arm("pool.task", "p0.03,seed13,throw");

  constexpr int kThreads = 4;
  constexpr int kPerThread = 50;
  std::atomic<int> ok{0}, typed{0}, rejected{0};
  std::mutex unexpected_mu;
  std::vector<std::string> unexpected;
  auto note_unexpected = [&](std::string what) {
    std::lock_guard<std::mutex> lock(unexpected_mu);
    unexpected.push_back(std::move(what));
  };

  std::vector<std::thread> clients;
  clients.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    clients.emplace_back([&, t] {
      for (int i = 0; i < kPerThread; ++i) {
        RequestOptions ropts;
        ropts.priority = static_cast<Priority>((t + i) % kNumPriorities);
        if (i % 2 == 0) {
          ropts.retry.max_attempts = 2;
          ropts.retry.backoff = std::chrono::microseconds{200};
          ropts.retry.fallback_variant = "fb";
        }
        if (i % 5 == 0) ropts.deadline = std::chrono::milliseconds{100};
        std::future<Prediction> fut;
        try {
          fut = engine.submit(payload(static_cast<float>(i % 7)), ropts);
        } catch (const failpoint::InjectedFaultError&) {
          rejected.fetch_add(1);
          continue;
        } catch (const QueueFullError&) {
          rejected.fetch_add(1);
          continue;
        } catch (const std::exception& e) {
          note_unexpected(std::string("submit threw: ") + e.what());
          continue;
        }
        try {
          const Prediction p = fut.get();
          if (p.label < 0) note_unexpected("resolved prediction carries no label");
          ok.fetch_add(1);
        } catch (const failpoint::InjectedFaultError&) {
          typed.fetch_add(1);
        } catch (const DeadlineExceededError&) {
          typed.fetch_add(1);
        } catch (const WatchdogTimeoutError&) {
          typed.fetch_add(1);
        } catch (const UnknownVariantError&) {
          typed.fetch_add(1);
        } catch (const std::exception& e) {
          note_unexpected(std::string("future resolved untyped: ") + e.what());
        }
      }
    });
  }
  for (std::thread& c : clients) c.join();

  // No lost request: every submit resolved one way or another.
  EXPECT_EQ(ok.load() + typed.load() + rejected.load(), kThreads * kPerThread);
  for (const std::string& u : unexpected) ADD_FAILURE() << u;
  EXPECT_GT(failpoint::total_fires(), fires_before) << "the chaos schedule never fired";
  EXPECT_GT(ok.load(), 0) << "retry/fallback should pull some requests through";

  // Faults clear -> the error rate drops to zero: full recovery, no residue.
  failpoint::disarm_all();
  for (int i = 0; i < 40; ++i) EXPECT_EQ(engine.submit(payload(3.0f)).get().label, 3);

  const EngineStats s = engine.stats();
  std::uint64_t served = 0;
  for (int p = 0; p < kNumPriorities; ++p) {
    const PriorityStats& ps = s.by_priority[static_cast<std::size_t>(p)];
    EXPECT_LE(ps.served + ps.deadline_dropped, ps.queued)
        << "priority " << p << " counters out of order";
    served += ps.served;
  }
  EXPECT_EQ(served, static_cast<std::uint64_t>(ok.load()) + 40u)
      << "served counter must match the clients' successful resolutions";
}

// ---------------------------------------------------------------------------
// Zero-overhead-when-disabled: the hot path must stay allocation-free
// ---------------------------------------------------------------------------

TEST_F(ChaosTest, DisabledSiteAddsNoAllocations) {
  ASSERT_TRUE(alloc_counting_active())
      << "test_chaos must link alloc_interpose (see CMakeLists.txt)";
  const std::uint64_t before = alloc_count();
  for (int i = 0; i < 100000; ++i) ASCEND_FAILPOINT(g_unit_site);
  EXPECT_EQ(alloc_count() - before, 0u)
      << "the disarmed macro must be a bare atomic load, never heap traffic";
}

TEST_F(ChaosTest, SteadyStateForwardStaysAllocFreeWithFailpointsInTheBinary) {
  ASSERT_TRUE(alloc_counting_active());
  // A real packed-ternary servable under an arena: the zero-alloc acceptance
  // claim from the arena PR must survive the failpoint instrumentation, with
  // an *unrelated* site armed to prove armed machinery elsewhere does not
  // leak allocations into the forward path.
  vit::VitConfig top;
  top.image_size = 16;
  top.patch_size = 8;
  top.dim = 16;
  top.layers = 1;
  top.heads = 2;
  top.mlp_ratio = 2;
  top.classes = 4;
  nn::Rng rng(7);
  nn::Tensor images({4, top.channels * top.image_size * top.image_size});
  rng.fill_uniform(images, 0.0f, 1.0f);
  vit::VisionTransformer model(top, 19);
  model.apply_precision(vit::PrecisionSpec::w2a2r16());
  (void)model.forward(images, /*training=*/false);  // latch LSQ steps
  const auto servable = vit::make_packed_ternary_servable(model, "w2a2");

  failpoint::arm("ckpt.crc", "p0.5,seed1,err");  // armed, but not on this path

  Arena arena;
  for (int i = 0; i < 3; ++i) {  // sizing + warm-up passes
    ArenaScope scope(arena);
    (void)servable->infer(images);
    arena.reset();
  }
  const std::uint64_t before = alloc_count();
  for (int i = 0; i < 5; ++i) {
    ArenaScope scope(arena);
    (void)servable->infer(images);
    arena.reset();
  }
  EXPECT_EQ(alloc_count() - before, 0u)
      << "steady-state forwards must not touch the heap with failpoints present";
}

// ---------------------------------------------------------------------------
// Front-door chaos: serve.accept / serve.read / serve.write / router.route
// ---------------------------------------------------------------------------

namespace {

serve::ShardSetOptions serve_chaos_opts(int shards = 2) {
  serve::ShardSetOptions o;
  o.shards = shards;
  o.engine.max_batch = 4;
  o.engine.max_delay = std::chrono::microseconds{300};
  o.engine.concurrent_forwards = 1;
  o.engine.threads = 2;
  o.engine.max_pending = 32;
  o.engine.default_variant = "mock";
  return o;
}

void serve_chaos_bootstrap(int /*shard*/, ModelRegistry& reg) {
  reg.publish(std::make_shared<MockServable>("mock", 0));
}

serve::RequestFrame serve_request(std::uint64_t id, float head) {
  serve::RequestFrame f;
  f.request_id = id;
  f.payload = payload(head);
  return f;
}

}  // namespace

TEST_F(ChaosTest, ServeAcceptInjectionDropsTheConnectionButTheLoopKeepsAccepting) {
  serve::ShardSet shards(serve_chaos_bootstrap, serve_chaos_opts());
  serve::Server server(shards);
  failpoint::arm("serve.accept", "once,throw");
  // The faulted accept closes the first connection the way an accept-time
  // socket error would; the TCP handshake already succeeded in the kernel,
  // so the client only notices at its first read.
  {
    serve::Client victim("127.0.0.1", server.port());
    victim.send(serve_request(1, 1.0f));
    EXPECT_THROW((void)victim.recv(), std::runtime_error);
  }
  // once => auto-disarmed: the loop is still accepting and serving.
  serve::Client survivor("127.0.0.1", server.port());
  EXPECT_EQ(survivor.request(serve_request(2, 3.0f)).status, serve::Status::kOk);
  const auto stats = failpoint::sites();
  for (const auto& s : stats)
    if (s.name == std::string("serve.accept")) EXPECT_EQ(s.fires, 1u);
}

TEST_F(ChaosTest, ServeReadInjectionKillsOnlyTheFaultedConnection) {
  serve::ShardSet shards(serve_chaos_bootstrap, serve_chaos_opts());
  serve::Server server(shards);
  serve::Client bystander("127.0.0.1", server.port());
  EXPECT_EQ(bystander.request(serve_request(1, 1.0f)).status, serve::Status::kOk);

  failpoint::arm("serve.read", "once,throw");
  serve::Client victim("127.0.0.1", server.port());
  victim.send(serve_request(2, 1.0f));
  EXPECT_THROW((void)victim.recv(), std::runtime_error);

  // The bystander's connection was never touched.
  EXPECT_EQ(bystander.request(serve_request(3, 2.0f)).status, serve::Status::kOk);
  EXPECT_EQ(server.stats().protocol_errors, 0u);
}

TEST_F(ChaosTest, ServeWriteInjectionDropsTheConnectionWithoutWedgingDrain) {
  serve::ShardSet shards(serve_chaos_bootstrap, serve_chaos_opts());
  serve::Server server(shards);
  failpoint::arm("serve.write", "once,throw");
  {
    serve::Client victim("127.0.0.1", server.port());
    victim.send(serve_request(1, 1.0f));
    // The response flush faults; the connection dies instead of delivering.
    EXPECT_THROW((void)victim.recv(), std::runtime_error);
  }
  serve::Client survivor("127.0.0.1", server.port());
  EXPECT_EQ(survivor.request(serve_request(2, 3.0f)).status, serve::Status::kOk);
  // Request accounting survived the dropped response: a drain completes
  // instead of waiting forever on the faulted request.
  server.drain();
  server.wait_drained();
}

TEST_F(ChaosTest, RouterRouteInjectionSurfacesAsTypedInjectedFaultOverTheWire) {
  serve::ShardSet shards(serve_chaos_bootstrap, serve_chaos_opts());
  serve::Server server(shards);
  serve::Client client("127.0.0.1", server.port());
  failpoint::arm("router.route", "n2,throw");
  for (int i = 0; i < 2; ++i) {
    const serve::ResponseFrame resp = client.request(serve_request(static_cast<std::uint64_t>(i), 1.0f));
    EXPECT_EQ(resp.status, serve::Status::kInjectedFault);
    EXPECT_EQ(resp.request_id, static_cast<std::uint64_t>(i));
  }
  // n2 exhausted: the SAME connection keeps serving — a route fault is a
  // typed per-request failure, not a connection failure.
  EXPECT_EQ(client.request(serve_request(9, 4.0f)).status, serve::Status::kOk);
  EXPECT_EQ(shards.admitted(), 1u);
}

TEST_F(ChaosTest, MidTrafficPublishAllWithFailingCanaryKeepsIncumbentAndLosesNoRequest) {
  // The coordinated-publish acceptance claim under live load: while mixed
  // traffic flows, a publish_all whose shard-1 candidate diverges on the
  // canary must leave BOTH shards on the incumbent generation, and every
  // issued request must still resolve: ok + typed + rejected == issued.
  serve::ShardSet shards(serve_chaos_bootstrap, serve_chaos_opts());
  serve::Server server(shards);

  constexpr int kClients = 6;
  constexpr int kPerClient = 40;
  std::atomic<int> ok{0}, retry{0}, typed{0};
  std::vector<std::thread> clients;
  clients.reserve(kClients);
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      serve::Client client("127.0.0.1", server.port());
      for (int i = 0; i < kPerClient; ++i) {
        serve::RequestFrame f = serve_request(static_cast<std::uint64_t>(c * kPerClient + i),
                                              static_cast<float>(i % 8));
        f.options.priority = static_cast<Priority>(i % kNumPriorities);
        const serve::ResponseFrame resp = client.request(f);
        if (resp.status == serve::Status::kOk) {
          ok.fetch_add(1);
          EXPECT_EQ(resp.label, i % 8);  // always the bias-0 incumbent
        } else if (resp.status == serve::Status::kRetryAfter) {
          retry.fetch_add(1);
        } else {
          typed.fetch_add(1);
        }
      }
    });
  }

  CanaryOptions canary;
  canary.golden_input = golden_batch(3);
  canary.require_label_match = true;
  const serve::PublishAllResult pub = shards.publish_all(
      [](int shard) { return std::make_shared<MockServable>("mock", shard == 1 ? 5 : 0); },
      &canary);
  for (auto& t : clients) t.join();

  EXPECT_FALSE(pub.published);
  EXPECT_EQ(pub.failed_shard, 1);
  for (int s = 0; s < 2; ++s)
    EXPECT_EQ(shards.registry(s)->generation("mock"), 1u)
        << "shard " << s << " must stay on the incumbent generation";
  EXPECT_EQ(shards.registry(1)->rollbacks(), 1u);
  EXPECT_EQ(ok.load() + retry.load() + typed.load(), kClients * kPerClient)
      << "no request lost across the rejected coordinated publish";
  EXPECT_GT(ok.load(), 0);

  serve::Client finisher("127.0.0.1", server.port());
  finisher.drain_server();
  server.wait_drained();
  EXPECT_EQ(server.stats().responses_out, server.stats().frames_in);
}
