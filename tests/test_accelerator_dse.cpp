// Unit tests for the accelerator area model and the softmax DSE.

#include <gtest/gtest.h>

#include "core/accelerator.h"
#include "core/dse.h"

using namespace ascend;
using namespace ascend::core;

TEST(Accelerator, AreaComposition) {
  AcceleratorConfig cfg;
  cfg.softmax.by = 8;
  cfg.softmax.s1 = 32;
  cfg.softmax.s2 = 8;
  cfg.softmax.k = 3;
  const AcceleratorReport rep = accelerator_area(cfg);
  EXPECT_GT(rep.total_area, 0.0);
  EXPECT_NEAR(rep.total_area,
              rep.softmax_total_area + rep.dot_fabric_area + rep.gelu_area +
                  rep.norm_residual_area,
              1e-6);
  EXPECT_DOUBLE_EQ(rep.softmax_total_area, rep.softmax_block_area * cfg.softmax.k);
  // The paper's regime: total in the millions of um^2, softmax a small slice
  // at the low-end configuration.
  EXPECT_GT(rep.total_area, 5e5);
  EXPECT_LT(rep.softmax_fraction(), 0.5);
}

TEST(Accelerator, SoftmaxAreaGrowsAlongParetoConfigs) {
  // Table VI: [4,128,2,2] -> [8,32,8,3] -> [16,128,16,4] -> [32,128,16,4]
  const int bys[] = {4, 8, 16, 32};
  const int s1s[] = {128, 32, 128, 128};
  const int s2s[] = {2, 8, 16, 16};
  const int ks[] = {2, 3, 4, 4};
  double prev = 0.0;
  double first_total = 0.0, last_total = 0.0;
  for (int i = 0; i < 4; ++i) {
    AcceleratorConfig cfg;
    cfg.softmax.by = bys[i];
    cfg.softmax.s1 = s1s[i];
    cfg.softmax.s2 = s2s[i];
    cfg.softmax.k = ks[i];
    cfg.softmax.alpha_y = 1.0 / 64;
    const AcceleratorReport rep = accelerator_area(cfg);
    EXPECT_GT(rep.softmax_total_area, prev) << "config " << i;
    prev = rep.softmax_total_area;
    if (i == 0) first_total = rep.total_area;
    last_total = rep.total_area;
  }
  // The softmax growth must be dramatic (paper: >30x block area) while the
  // low-end config keeps softmax a small fraction of the accelerator.
  AcceleratorConfig low;
  low.softmax.by = 4;
  low.softmax.s1 = 128;
  low.softmax.s2 = 2;
  low.softmax.k = 2;
  EXPECT_GT(prev / accelerator_area(low).softmax_total_area, 10.0);
  EXPECT_GT(last_total, first_total);
}

TEST(Dse, SmallSweepProducesParetoFront) {
  // Reduced-m sweep to keep the test fast; the bench runs the full m = 64.
  const DseResult res = sweep_softmax_design_space(/*bx=*/2, /*m=*/16, /*mae_rows=*/4, 1);
  EXPECT_EQ(res.nominal_candidates, 2916);
  EXPECT_GT(static_cast<int>(res.points.size()), 500);
  EXPECT_EQ(static_cast<int>(res.points.size()) + res.infeasible, res.nominal_candidates);
  ASSERT_FALSE(res.pareto.empty());

  // Pareto front: strictly increasing ADP, strictly decreasing MAE.
  for (std::size_t i = 1; i < res.pareto.size(); ++i) {
    const DsePoint& a = res.points[res.pareto[i - 1]];
    const DsePoint& b = res.points[res.pareto[i]];
    EXPECT_LE(a.adp(), b.adp());
    EXPECT_GT(a.mae, b.mae);
  }
  // No point dominates a front member.
  for (std::size_t f : res.pareto)
    for (const DsePoint& p : res.points) {
      const bool dominates = p.adp() < res.points[f].adp() - 1e-9 &&
                             p.mae < res.points[f].mae - 1e-12;
      EXPECT_FALSE(dominates);
    }
}

TEST(Dse, RejectsBadBx) {
  EXPECT_THROW(sweep_softmax_design_space(3), std::invalid_argument);
}

TEST(Dse, CachedSweepIdenticalToEmulatedSweep) {
  // Acceptance gate of the cached DSE path: LUT-served MAE must reproduce
  // the circuit-emulated sweep bit for bit at the same seed.
  DseOptions cached;  // defaults: use_tf_cache = true
  DseOptions emulated;
  emulated.use_tf_cache = false;
  const DseResult a = sweep_softmax_design_space(2, 16, 3, 42, cached);
  const DseResult b = sweep_softmax_design_space(2, 16, 3, 42, emulated);
  ASSERT_EQ(a.points.size(), b.points.size());
  EXPECT_EQ(a.infeasible, b.infeasible);
  for (std::size_t i = 0; i < a.points.size(); ++i) {
    EXPECT_EQ(a.points[i].mae, b.points[i].mae) << "point " << i;
    EXPECT_EQ(a.points[i].adp(), b.points[i].adp()) << "point " << i;
  }
  EXPECT_EQ(a.pareto, b.pareto);
}

TEST(Dse, ResultIndependentOfExecutionPlan) {
  // Serial, multi-thread, and external-pool execution must agree exactly,
  // and a caller-provided cache must be filled.
  DseOptions serial;
  serial.threads = 1;
  DseOptions threaded;
  threaded.threads = 4;
  runtime::ThreadPool pool(3);
  runtime::TfCache cache;
  DseOptions pooled;
  pooled.pool = &pool;
  pooled.cache = &cache;
  const DseResult a = sweep_softmax_design_space(2, 16, 2, 7, serial);
  const DseResult b = sweep_softmax_design_space(2, 16, 2, 7, threaded);
  const DseResult c = sweep_softmax_design_space(2, 16, 2, 7, pooled);
  ASSERT_EQ(a.points.size(), b.points.size());
  ASSERT_EQ(a.points.size(), c.points.size());
  for (std::size_t i = 0; i < a.points.size(); ++i) {
    EXPECT_EQ(a.points[i].mae, b.points[i].mae);
    EXPECT_EQ(a.points[i].mae, c.points[i].mae);
  }
  EXPECT_EQ(cache.size(), a.points.size()) << "one SoftmaxLut per feasible design";
}

TEST(ParetoFront, HandlesEdgeCases) {
  std::vector<DsePoint> pts;
  EXPECT_TRUE(pareto_front(pts).empty());
  DsePoint a;
  a.area_um2 = 1;
  a.delay_ns = 1;
  a.mae = 0.5;
  pts.push_back(a);
  const auto front = pareto_front(pts);
  ASSERT_EQ(front.size(), 1u);
  EXPECT_EQ(front[0], 0u);
}
