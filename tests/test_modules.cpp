// Grad-checked unit tests for the layer modules.

#include <gtest/gtest.h>

#include "nn/module.h"
#include "test_util.h"

using namespace ascend::nn;

namespace {

/// Scalar test loss: weighted sum of the layer output.
double weighted(const Tensor& y, const Tensor& w) {
  double l = 0;
  for (std::size_t i = 0; i < y.size(); ++i) l += y[i] * w[i];
  return l;
}

}  // namespace

TEST(LinearLayer, ForwardShapeAndBias) {
  Rng rng(1);
  Linear lin(4, 3, rng);
  lin.bias().value[1] = 7.0f;
  Tensor x({2, 4}, 0.0f);
  const Tensor y = lin.forward(x);
  EXPECT_EQ(y.dim(0), 2);
  EXPECT_EQ(y.dim(1), 3);
  EXPECT_FLOAT_EQ(y.at(0, 1), 7.0f);  // zero input -> bias only
  EXPECT_THROW(lin.forward(Tensor({2, 5})), std::invalid_argument);
}

TEST(LinearLayer, GradCheckInputAndParams) {
  Rng rng(2);
  Linear lin(5, 4, rng);
  Tensor x({3, 5});
  rng.fill_normal(x, 0, 1);
  Tensor gy({3, 4});
  rng.fill_normal(gy, 0, 1);

  auto loss = [&]() { return weighted(lin.forward(x), gy); };

  lin.weight().zero_grad();
  lin.bias().zero_grad();
  (void)lin.forward(x);
  const Tensor gx = lin.backward(gy);

  EXPECT_LT(ascend::testing::max_grad_error(x, loss, gx), 2e-2);
  EXPECT_LT(ascend::testing::max_grad_error(lin.weight().value, loss, lin.weight().grad), 2e-2);
  EXPECT_LT(ascend::testing::max_grad_error(lin.bias().value, loss, lin.bias().grad), 2e-2);
}

TEST(LinearLayer, CollectParams) {
  Rng rng(3);
  Linear lin(2, 2, rng);
  std::vector<Param*> ps;
  lin.collect_params(ps);
  EXPECT_EQ(ps.size(), 2u);  // weight + bias, quantizers off
}

TEST(LayerNormLayer, NormalizesRows) {
  Rng rng(4);
  LayerNorm ln(8);
  Tensor x({3, 8});
  rng.fill_normal(x, 5.0, 2.0);
  const Tensor y = ln.forward(x);
  for (int r = 0; r < 3; ++r) {
    float mean = 0, var = 0;
    for (int c = 0; c < 8; ++c) mean += y.at(r, c);
    mean /= 8;
    for (int c = 0; c < 8; ++c) var += (y.at(r, c) - mean) * (y.at(r, c) - mean);
    var /= 8;
    EXPECT_NEAR(mean, 0.0f, 1e-4);
    EXPECT_NEAR(var, 1.0f, 1e-2);
  }
}

TEST(LayerNormLayer, GradCheck) {
  Rng rng(5);
  LayerNorm ln(6);
  rng.fill_normal(ln.gamma().value, 1.0, 0.2);
  rng.fill_normal(ln.beta().value, 0.0, 0.2);
  Tensor x({4, 6});
  rng.fill_normal(x, 0, 1);
  Tensor gy({4, 6});
  rng.fill_normal(gy, 0, 1);

  auto loss = [&]() { return weighted(ln.forward(x), gy); };
  ln.gamma().zero_grad();
  ln.beta().zero_grad();
  (void)ln.forward(x);
  const Tensor gx = ln.backward(gy);
  EXPECT_LT(ascend::testing::max_grad_error(x, loss, gx), 3e-2);
  EXPECT_LT(ascend::testing::max_grad_error(ln.gamma().value, loss, ln.gamma().grad), 3e-2);
  EXPECT_LT(ascend::testing::max_grad_error(ln.beta().value, loss, ln.beta().grad), 3e-2);
}

TEST(BatchNormLayer, TrainNormalizesColumns) {
  Rng rng(6);
  BatchNorm bn(5);
  Tensor x({16, 5});
  rng.fill_normal(x, -3.0, 4.0);
  const Tensor y = bn.forward(x, /*training=*/true);
  for (int c = 0; c < 5; ++c) {
    float mean = 0;
    for (int r = 0; r < 16; ++r) mean += y.at(r, c);
    EXPECT_NEAR(mean / 16, 0.0f, 1e-4);
  }
}

TEST(BatchNormLayer, RunningStatsUsedAtEval) {
  Rng rng(7);
  BatchNorm bn(3);
  Tensor x({64, 3});
  rng.fill_normal(x, 2.0, 1.0);
  for (int i = 0; i < 50; ++i) (void)bn.forward(x, true);  // converge running stats
  const Tensor y = bn.forward(x, false);
  float mean = 0;
  for (int r = 0; r < 64; ++r) mean += y.at(r, 0);
  EXPECT_NEAR(mean / 64, 0.0f, 0.05);
}

TEST(BatchNormLayer, GradCheck) {
  Rng rng(8);
  BatchNorm bn(4);
  Tensor x({6, 4});
  rng.fill_normal(x, 0, 1);
  Tensor gy({6, 4});
  rng.fill_normal(gy, 0, 1);

  auto loss = [&]() { return weighted(bn.forward(x, true), gy); };
  bn.gamma().zero_grad();
  bn.beta().zero_grad();
  (void)bn.forward(x, true);
  const Tensor gx = bn.backward(gy);
  EXPECT_LT(ascend::testing::max_grad_error(x, loss, gx), 3e-2);
  EXPECT_LT(ascend::testing::max_grad_error(bn.gamma().value, loss, bn.gamma().grad), 3e-2);
}

TEST(GeluLayer, ForwardBackwardConsistent) {
  Rng rng(9);
  Gelu gelu;
  Tensor x({2, 3});
  rng.fill_normal(x, 0, 1);
  Tensor gy({2, 3}, 1.0f);
  (void)gelu.forward(x);
  const Tensor gx = gelu.backward(gy);
  auto loss = [&]() { return gelu.forward(x).sum(); };
  EXPECT_LT(ascend::testing::max_grad_error(x, loss, gx), 2e-2);
}

// ---------------------------------------------------------------------------
// Const infer path — must be bit-exact with the eval-mode training forward
// and must not touch member state.
// ---------------------------------------------------------------------------

namespace {

void expect_bitwise_equal(const Tensor& a, const Tensor& b, const char* what) {
  ASSERT_EQ(a.shape(), b.shape()) << what;
  for (std::size_t i = 0; i < a.size(); ++i) EXPECT_EQ(a[i], b[i]) << what << " element " << i;
}

}  // namespace

TEST(InferPath, LsqQuantizerBitExactOnceInitialised) {
  LsqQuantizer q(QuantSpec::from_bsl(2));
  Rng rng(11);
  Tensor x({4, 6});
  rng.fill_normal(x, 0, 1);
  const Tensor ref = q.forward(x);  // initialises the step
  expect_bitwise_equal(q.infer(x), ref, "quantizer");
  // infer on other data agrees with the (state-mutating) training forward.
  Tensor x2({4, 6});
  rng.fill_normal(x2, 0, 0.5f);
  expect_bitwise_equal(q.infer(x2), q.forward(x2), "quantizer x2");
}

TEST(InferPath, LsqQuantizerDisabledIsIdentity) {
  LsqQuantizer q;
  Tensor x({2, 3});
  Rng rng(12);
  rng.fill_normal(x, 0, 1);
  expect_bitwise_equal(q.infer(x), x, "disabled quantizer");
}

TEST(InferPath, LinearBitExactWithForward) {
  Rng rng(13);
  Linear lin(5, 4, rng);
  lin.set_weight_quant(QuantSpec::from_bsl(2));
  lin.set_input_quant(QuantSpec::from_bsl(2));
  Tensor x({3, 5});
  rng.fill_normal(x, 0, 1);
  const Tensor ref = lin.forward(x);  // initialises both quantizer steps
  expect_bitwise_equal(lin.infer(x), ref, "linear");
  EXPECT_THROW(lin.infer(Tensor({3, 6})), std::invalid_argument);
}

TEST(InferPath, LinearFrozenSnapshotInvalidatedByApplyPrecision) {
  // The satellite acceptance case: re-quantizing after a served infer (the
  // apply_precision path calls set_weight_quant/set_input_quant) must change
  // results identically on the snapshot path and the non-snapshot path.
  Rng rng(21);
  Linear lin(6, 5, rng);
  lin.set_weight_quant(QuantSpec::from_bsl(16));
  lin.set_input_quant(QuantSpec::from_bsl(16));
  Tensor x({4, 6});
  rng.fill_normal(x, 0, 1);
  (void)lin.forward(x);  // calibrate the quantizer steps
  const Tensor served = lin.infer(x);  // freezes the W16 weight snapshot
  EXPECT_TRUE(lin.weight_quant().frozen());

  // Tighten precision, as VisionTransformer::apply_precision does.
  lin.set_weight_quant(QuantSpec::ternary());
  lin.set_input_quant(QuantSpec::ternary());
  EXPECT_FALSE(lin.weight_quant().frozen()) << "apply_precision must thaw the snapshot";
  const Tensor snapshot_path = lin.infer(x);

  // Non-snapshot control: quantize weights per call through the quantizer's
  // plain infer (the pre-snapshot serving behaviour).
  const Tensor manual = [&] {
    const Tensor xq = lin.input_quant().infer(x);
    const Tensor wq = lin.weight_quant().infer(lin.weight().value);
    Tensor y = matmul(xq, wq);
    for (int r = 0; r < y.dim(0); ++r)
      for (int c = 0; c < y.dim(1); ++c) y.at(r, c) += lin.bias().value[static_cast<std::size_t>(c)];
    return y;
  }();
  expect_bitwise_equal(snapshot_path, manual, "snapshot vs per-call requantization");

  // And the precision change must actually change the output vs the old spec.
  bool any_diff = false;
  for (std::size_t i = 0; i < served.size(); ++i) any_diff = any_diff || served[i] != manual[i];
  EXPECT_TRUE(any_diff) << "W2 must differ from the previously served W16 output";
}

TEST(InferPath, LinearThawRebuildsSnapshotAfterDirectWeightEdit) {
  Rng rng(22);
  Linear lin(4, 4, rng);
  lin.set_weight_quant(QuantSpec::ternary());
  Tensor x({2, 4});
  rng.fill_normal(x, 0, 1);
  (void)lin.forward(x);
  (void)lin.infer(x);  // freeze
  lin.weight().value[0] += 10.0f;  // out-of-band edit: snapshot is now stale
  lin.thaw();
  const Tensor after = lin.infer(x);
  const Tensor manual = matmul(lin.input_quant().infer(x),
                               lin.weight_quant().infer(lin.weight().value));
  for (int r = 0; r < after.dim(0); ++r)
    for (int c = 0; c < after.dim(1); ++c)
      EXPECT_EQ(after.at(r, c), manual.at(r, c) + lin.bias().value[static_cast<std::size_t>(c)]);
}

TEST(InferPath, LayerNormBitExactWithForward) {
  LayerNorm ln(6);
  Rng rng(14);
  ln.gamma().value[2] = 1.7f;
  ln.beta().value[4] = -0.3f;
  Tensor x({5, 6});
  rng.fill_normal(x, 0, 2);
  expect_bitwise_equal(ln.infer(x), ln.forward(x), "layernorm");
}

TEST(InferPath, BatchNormBitExactWithEvalForward) {
  BatchNorm bn(4);
  Rng rng(15);
  for (int step = 0; step < 3; ++step) {  // accumulate running stats
    Tensor x({8, 4});
    rng.fill_normal(x, 0.5f, 1.5f);
    (void)bn.forward(x, /*training=*/true);
  }
  Tensor x({6, 4});
  rng.fill_normal(x, 0, 1);
  expect_bitwise_equal(bn.infer(x), bn.forward(x, /*training=*/false), "batchnorm");
}

TEST(InferPath, BatchNormFrozenSnapshotThawRules) {
  BatchNorm bn(4);
  Rng rng(23);
  Tensor xt({8, 4});
  rng.fill_normal(xt, 0.3f, 1.2f);
  (void)bn.forward(xt, /*training=*/true);

  Tensor x({5, 4});
  rng.fill_normal(x, 0, 1);
  const Tensor first = bn.infer(x);
  EXPECT_TRUE(bn.frozen()) << "infer must freeze the per-channel scale/shift";
  expect_bitwise_equal(bn.infer(x), first, "snapshot serving is deterministic");

  // A training forward moves the running stats and must thaw.
  Tensor xt2({8, 4});
  rng.fill_normal(xt2, -0.8f, 2.0f);
  (void)bn.forward(xt2, /*training=*/true);
  EXPECT_FALSE(bn.frozen()) << "training forward must thaw the snapshot";
  const Tensor second = bn.infer(x);
  bool any_diff = false;
  for (std::size_t i = 0; i < second.size(); ++i) any_diff = any_diff || second[i] != first[i];
  EXPECT_TRUE(any_diff) << "rebuilt snapshot must reflect the updated stats";

  // Out-of-band stat edits require a manual thaw (same contract as Linear).
  bn.running_var()[0] *= 4.0f;
  bn.thaw();
  EXPECT_FALSE(bn.frozen());
  const Tensor third = bn.infer(x);
  EXPECT_NE(third.at(0, 0), second.at(0, 0));
  expect_bitwise_equal(bn.infer(x), third, "rebuilt snapshot serves consistently");
}

TEST(InferPath, GeluBitExactWithForward) {
  Gelu gelu;
  Rng rng(16);
  Tensor x({3, 7});
  rng.fill_normal(x, 0, 2);
  expect_bitwise_equal(gelu.infer(x), gelu.forward(x), "gelu");
}
