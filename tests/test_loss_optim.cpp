// Unit tests for losses and the AdamW optimizer.

#include <gtest/gtest.h>

#include <cmath>

#include "nn/loss.h"
#include "nn/optim.h"
#include "nn/rng.h"
#include "test_util.h"

using namespace ascend::nn;

TEST(CrossEntropy, PerfectPredictionLowLoss) {
  Tensor logits({2, 3});
  logits.at(0, 1) = 20.0f;
  logits.at(1, 2) = 20.0f;
  const LossResult r = cross_entropy(logits, {1, 2});
  EXPECT_LT(r.value, 1e-6);
}

TEST(CrossEntropy, GradCheck) {
  Rng rng(1);
  Tensor logits({3, 5});
  rng.fill_normal(logits, 0, 1);
  const std::vector<int> labels = {0, 3, 4};
  const LossResult r = cross_entropy(logits, labels);
  auto loss = [&]() { return cross_entropy(logits, labels).value; };
  EXPECT_LT(ascend::testing::max_grad_error(logits, loss, r.grad), 2e-2);
  EXPECT_THROW(cross_entropy(logits, {0, 1}), std::invalid_argument);
  EXPECT_THROW(cross_entropy(logits, {0, 1, 9}), std::invalid_argument);
}

TEST(KlDistill, ZeroWhenEqual) {
  Rng rng(2);
  Tensor logits({4, 6});
  rng.fill_normal(logits, 0, 1);
  const LossResult r = kl_distill(logits, logits);
  EXPECT_NEAR(r.value, 0.0, 1e-9);
  for (std::size_t i = 0; i < r.grad.size(); ++i) EXPECT_NEAR(r.grad[i], 0.0f, 1e-6);
}

TEST(KlDistill, GradCheck) {
  Rng rng(3);
  Tensor s({2, 4}), t({2, 4});
  rng.fill_normal(s, 0, 1);
  rng.fill_normal(t, 0, 1);
  const LossResult r = kl_distill(s, t);
  EXPECT_GT(r.value, 0.0);
  auto loss = [&]() { return kl_distill(s, t).value; };
  EXPECT_LT(ascend::testing::max_grad_error(s, loss, r.grad), 2e-2);
}

TEST(MseLoss, ValueAndGrad) {
  Tensor a({1, 2}), b({1, 2});
  a[0] = 1.0f;
  a[1] = 3.0f;
  b[0] = 0.0f;
  b[1] = 1.0f;
  const LossResult r = mse(a, b);
  EXPECT_DOUBLE_EQ(r.value, (1.0 + 4.0) / 2.0);
  EXPECT_FLOAT_EQ(r.grad[0], 1.0f);   // 2*(1-0)/2
  EXPECT_FLOAT_EQ(r.grad[1], 2.0f);   // 2*(3-1)/2
}

TEST(Accuracy, CountsTopOne) {
  Tensor logits({3, 2});
  logits.at(0, 1) = 1.0f;  // pred 1
  logits.at(1, 0) = 1.0f;  // pred 0
  logits.at(2, 1) = 1.0f;  // pred 1
  EXPECT_DOUBLE_EQ(accuracy(logits, {1, 0, 0}), 2.0 / 3.0);
}

TEST(AdamWOpt, MinimizesQuadratic) {
  Param p;
  p.init_shape({4});
  for (int i = 0; i < 4; ++i) p.value[static_cast<std::size_t>(i)] = 5.0f * (i + 1);
  AdamW opt({&p}, 0.2f, 0.9f, 0.999f, 1e-8f, 0.0f);
  for (int step = 0; step < 300; ++step) {
    opt.zero_grad();
    for (std::size_t i = 0; i < 4; ++i) p.grad[i] = 2.0f * p.value[i];  // d/dx x^2
    opt.step();
  }
  for (std::size_t i = 0; i < 4; ++i) EXPECT_NEAR(p.value[i], 0.0f, 0.05f);
}

TEST(AdamWOpt, WeightDecayShrinksParams) {
  Param p;
  p.init_shape({1});
  p.value[0] = 1.0f;
  AdamW opt({&p}, 0.01f, 0.9f, 0.999f, 1e-8f, 0.5f);
  for (int step = 0; step < 100; ++step) {
    opt.zero_grad();  // zero gradient: only decay acts
    opt.step();
  }
  EXPECT_LT(p.value[0], 0.7f);

  Param q;
  q.init_shape({1});
  q.value[0] = 1.0f;
  q.no_weight_decay = true;
  AdamW opt2({&q}, 0.01f, 0.9f, 0.999f, 1e-8f, 0.5f);
  for (int step = 0; step < 100; ++step) {
    opt2.zero_grad();
    opt2.step();
  }
  EXPECT_NEAR(q.value[0], 1.0f, 1e-5);
}

TEST(CosineLr, DecaysToZero) {
  EXPECT_FLOAT_EQ(cosine_lr(1.0f, 0, 100), 1.0f);
  EXPECT_NEAR(cosine_lr(1.0f, 50, 100), 0.5f, 1e-6);
  EXPECT_NEAR(cosine_lr(1.0f, 100, 100), 0.0f, 1e-6);
  EXPECT_FLOAT_EQ(cosine_lr(1.0f, 5, 0), 1.0f);
}
