// Unit tests for the differentiable iterative approximate softmax.

#include <gtest/gtest.h>

#include "nn/approx_softmax.h"
#include "nn/rng.h"
#include "sc/softmax_iter.h"
#include "test_util.h"

using namespace ascend::nn;

TEST(ApproxSoftmaxNn, MatchesFloatAlgorithmOne) {
  // The layer must be the exact same recurrence as sc::softmax_iterative_ref.
  ApproxSoftmax layer(3);
  Rng rng(1);
  Tensor x({5, 7});
  rng.fill_normal(x, 0, 1.2);
  const Tensor y = layer.forward(x);
  for (int r = 0; r < 5; ++r) {
    std::vector<double> row(7);
    for (int c = 0; c < 7; ++c) row[static_cast<std::size_t>(c)] = x.at(r, c);
    const auto ref = ascend::sc::softmax_iterative_ref(row, 3);
    for (int c = 0; c < 7; ++c) EXPECT_NEAR(y.at(r, c), ref[static_cast<std::size_t>(c)], 1e-5);
  }
}

TEST(ApproxSoftmaxNn, KOneIsSingleEulerStep) {
  ApproxSoftmax layer(1);
  Tensor x({1, 2});
  x[0] = 1.0f;
  x[1] = -1.0f;
  const Tensor y = layer.forward(x);
  // y0 = 0.5; z = {0.5, -0.5}; S = 0; y = y0 + z = {1.0, 0.0}.
  EXPECT_NEAR(y[0], 1.0f, 1e-6);
  EXPECT_NEAR(y[1], 0.0f, 1e-6);
}

TEST(ApproxSoftmaxNn, GradCheck) {
  for (int k : {1, 2, 3, 5}) {
    ApproxSoftmax layer(k);
    Rng rng(10 + k);
    Tensor x({3, 5});
    rng.fill_normal(x, 0, 1);
    Tensor gy({3, 5});
    rng.fill_normal(gy, 0, 1);

    (void)layer.forward(x);
    const Tensor gx = layer.backward(gy);
    auto loss = [&]() {
      const Tensor y = layer.forward(x);
      double l = 0;
      for (std::size_t i = 0; i < y.size(); ++i) l += y[i] * gy[i];
      return l;
    };
    EXPECT_LT(ascend::testing::max_grad_error(x, loss, gx), 3e-2) << "k=" << k;
  }
}

TEST(ApproxSoftmaxNn, SetKValidates) {
  ApproxSoftmax layer(2);
  EXPECT_THROW(layer.set_k(0), std::invalid_argument);
  layer.set_k(4);
  EXPECT_EQ(layer.k(), 4);
  EXPECT_THROW(ApproxSoftmax(0), std::invalid_argument);
}

TEST(ApproxSoftmaxNn, RejectsNonRank2) {
  ApproxSoftmax layer(2);
  EXPECT_THROW(layer.forward(Tensor({4})), std::invalid_argument);
}
