// Unit tests for the Bernstein-polynomial (ReSC) baseline.

#include <gtest/gtest.h>

#include <cmath>

#include "sc/bernstein.h"
#include "sc/gate_si.h"  // gelu_exact

using namespace ascend::sc;

TEST(Bernstein, ConstantPolynomial) {
  BernsteinUnit u({0.3});
  for (double x : {0.0, 0.5, 1.0}) EXPECT_DOUBLE_EQ(u.eval_exact(x), 0.3);
}

TEST(Bernstein, LinearPolynomialEndpoints) {
  // Degree-1 Bernstein: B(u) = b0 (1-u) + b1 u.
  BernsteinUnit u({0.1, 0.9});
  EXPECT_DOUBLE_EQ(u.eval_exact(0.0), 0.1);
  EXPECT_DOUBLE_EQ(u.eval_exact(1.0), 0.9);
  EXPECT_NEAR(u.eval_exact(0.5), 0.5, 1e-12);
}

TEST(Bernstein, CoefficientsValidated) {
  EXPECT_THROW(BernsteinUnit({1.2}), std::invalid_argument);
  EXPECT_THROW(BernsteinUnit({-0.1, 0.5}), std::invalid_argument);
  EXPECT_THROW(BernsteinUnit({}), std::invalid_argument);
}

TEST(BernsteinFit, RecoversRepresentableTarget) {
  // x^2 on [0,1] is exactly degree-2 Bernstein with b = {0, 0, 1}.
  const BernsteinUnit u = BernsteinUnit::fit([](double x) { return x * x; }, 3);
  EXPECT_NEAR(u.coefficients()[0], 0.0, 1e-3);
  EXPECT_NEAR(u.coefficients()[1], 0.0, 1e-3);
  EXPECT_NEAR(u.coefficients()[2], 1.0, 1e-3);
}

TEST(BernsteinFit, ErrorDecreasesWithDegree) {
  auto target = [](double u) { return 0.5 + 0.4 * std::sin(6.0 * u); };
  auto fit_err = [&](int terms) {
    const BernsteinUnit u = BernsteinUnit::fit(target, terms);
    double err = 0.0;
    for (int i = 0; i <= 200; ++i) {
      const double x = i / 200.0;
      err += std::fabs(u.eval_exact(x) - target(x));
    }
    return err / 201.0;
  };
  const double e4 = fit_err(4), e6 = fit_err(6), e8 = fit_err(8);
  EXPECT_GT(e4, e6);
  EXPECT_GT(e6, e8);
}

TEST(BernsteinStochastic, ConvergesToExactWithBsl) {
  const BernsteinUnit u = BernsteinUnit::fit([](double x) { return x * x; }, 4);
  const double exact = u.eval_exact(0.6);
  double err_short = 0.0, err_long = 0.0;
  const int reps = 24;
  for (int r = 0; r < reps; ++r) {
    err_short += std::fabs(u.eval_stochastic(0.6, 128, 1000 + r) - exact);
    err_long += std::fabs(u.eval_stochastic(0.6, 8192, 2000 + r) - exact);
  }
  EXPECT_LT(err_long / reps, err_short / reps);
  EXPECT_LT(err_long / reps, 0.02);
}

TEST(BernsteinGelu, FitQualityImprovesWithTerms) {
  // Measured over the unit's own input range (fit error only).
  auto mae = [](int terms) {
    const BernsteinGelu g(terms);
    double total = 0.0;
    int cnt = 0;
    for (int i = 0; i <= 300; ++i) {
      const double x = -4.0 + 5.5 * i / 300.0;
      total += std::fabs(g.eval_exact(x) - gelu_exact(x));
      ++cnt;
    }
    return total / cnt;
  };
  const double m4 = mae(4), m5 = mae(5), m6 = mae(6);
  EXPECT_GT(m4, m5);
  EXPECT_GT(m5, m6);
  EXPECT_LT(m6, 0.06);  // degree-5 over the fit range: decent, not exact
}

TEST(BernsteinGelu, StochasticEvaluationTracksFit) {
  const BernsteinGelu g(5);
  for (double x : {-2.0, -0.75, 0.0, 1.5}) {
    double acc = 0.0;
    const int reps = 16;
    for (int r = 0; r < reps; ++r)
      acc += g.eval_stochastic(x, 2048, static_cast<std::uint64_t>(r) * 31 + 5);
    EXPECT_NEAR(acc / reps, g.eval_exact(x), 0.08) << "x=" << x;
  }
}

TEST(BernsteinGelu, ShortStreamsFluctuate) {
  // Fig. 2(b): noticeable computation fluctuation at short BSL.
  const BernsteinGelu g(4);
  double lo = 1e9, hi = -1e9;
  for (int seed = 1; seed <= 12; ++seed) {
    const double y = g.eval_stochastic(0.0, 128, static_cast<std::uint64_t>(seed));
    lo = std::min(lo, y);
    hi = std::max(hi, y);
  }
  EXPECT_GT(hi - lo, 0.05);
}
