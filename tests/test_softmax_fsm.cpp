// Unit tests for the FSM-based softmax baseline [17].

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "sc/softmax_fsm.h"
#include "sc/softmax_iter.h"

using namespace ascend::sc;

namespace {

FsmSoftmaxConfig cfg_m8(int bsl = 256) {
  FsmSoftmaxConfig cfg;
  cfg.m = 8;
  cfg.bsl = bsl;
  return cfg;
}

}  // namespace

TEST(SoftmaxFsm, OutputsInUnitRangeTopNearOne) {
  const std::vector<double> x = {0.5, -0.5, 1.5, 0.0, -1.0, 0.3, 0.8, -0.2};
  const auto y = softmax_fsm(x, cfg_m8());
  double mx = 0.0;
  for (double v : y) {
    EXPECT_GE(v, 0.0);
    EXPECT_LE(v, 1.0);
    mx = std::max(mx, v);
  }
  // Shift normalization places the largest count in (0.5, 1].
  EXPECT_GT(mx, 0.4);
}

TEST(SoftmaxFsm, PreservesTopElement) {
  // The paper's characterisation: relative order is preserved even though
  // the values are off. The argmax must survive on clear-winner rows.
  const auto rows = sample_attention_logits(8, 20, 5150);
  int hits = 0;
  FsmSoftmaxConfig cfg = cfg_m8(512);
  for (std::size_t r = 0; r < rows.size(); ++r) {
    cfg.seed = 0xF00D + r;
    const auto y = softmax_fsm(rows[r], cfg);
    const auto ref = softmax_exact(rows[r]);
    const auto am_got = std::max_element(y.begin(), y.end()) - y.begin();
    const auto am_ref = std::max_element(ref.begin(), ref.end()) - ref.begin();
    hits += (am_got == am_ref) ? 1 : 0;
  }
  EXPECT_GE(hits, 15);  // most rows keep the winner
}

TEST(SoftmaxFsm, ValuesAreNotNormalised) {
  // Without a true divider the outputs do not sum to 1 — the systematic
  // error the iterative approximate softmax eliminates.
  const auto rows = sample_attention_logits(8, 8, 33);
  double worst = 0.0;
  FsmSoftmaxConfig cfg = cfg_m8(512);
  for (const auto& row : rows) {
    const auto y = softmax_fsm(row, cfg);
    double sum = 0.0;
    for (double v : y) sum += v;
    worst = std::max(worst, std::fabs(sum - 1.0));
  }
  EXPECT_GT(worst, 0.3);
}

TEST(SoftmaxFsm, LargeAbsoluteError) {
  FsmSoftmaxConfig cfg;
  cfg.m = 64;
  cfg.bsl = 256;
  const double mae = softmax_fsm_mae(cfg, 10, 808);
  // Exact softmax values for m=64 rows average ~1/64 = 0.016; the baseline's
  // per-element error must exceed that signal level.
  EXPECT_GT(mae, 0.016);
  EXPECT_LT(mae, 0.5);
}

TEST(SoftmaxFsm, MaeRoughlyFlatInBsl) {
  // The error is dominated by the systematic normalization error, so going
  // from 128b to 1024b barely helps (Table IV's FSM rows: 0.108 -> 0.099).
  FsmSoftmaxConfig cfg;
  cfg.m = 32;
  cfg.bsl = 128;
  const double mae128 = softmax_fsm_mae(cfg, 12, 4242);
  cfg.bsl = 1024;
  const double mae1024 = softmax_fsm_mae(cfg, 12, 4242);
  EXPECT_LT(mae1024, mae128 * 1.15);          // not worse
  EXPECT_GT(mae1024, mae128 * 0.5);           // but nowhere near 8x better
}

TEST(SoftmaxFsm, InputValidation) {
  EXPECT_THROW(softmax_fsm({1.0}, cfg_m8()), std::invalid_argument);
  FsmSoftmaxConfig bad = cfg_m8();
  bad.bsl = 0;
  EXPECT_THROW(softmax_fsm(std::vector<double>(8, 0.0), bad), std::invalid_argument);
}
