// Unit tests for SC-emulated inference.

#include <gtest/gtest.h>

#include "vit/sc_inference.h"
#include "vit/train.h"

using namespace ascend;
using namespace ascend::vit;

namespace {

VitConfig tiny_config() {
  VitConfig cfg;
  cfg.image_size = 16;
  cfg.patch_size = 8;  // 4 tokens
  cfg.dim = 8;
  cfg.layers = 2;
  cfg.heads = 2;
  cfg.classes = 3;
  return cfg;
}

sc::SoftmaxIterConfig tiny_softmax() {
  sc::SoftmaxIterConfig sm;
  sm.m = 4;  // will be overridden anyway
  sm.k = 3;
  sm.bx = 4;
  sm.by = 16;
  sm.s1 = 2;
  sm.s2 = 2;
  sm.alpha_x = 1.0;
  sm.alpha_y = 1.5 / 16;
  return sm;
}

}  // namespace

TEST(ScInference, RunsAndRestoresHooks) {
  const VitConfig cfg = tiny_config();
  VisionTransformer model(cfg, 1);
  const Dataset test = make_synthetic_vision(20, cfg.classes, 2, cfg.image_size);

  ScInferenceConfig sc_cfg;
  sc_cfg.softmax = tiny_softmax();
  const double acc = evaluate_sc(model, test, sc_cfg);
  EXPECT_GE(acc, 0.0);
  EXPECT_LE(acc, 100.0);
  // Hooks must be cleared: backward through the model works again.
  const Batch b = take_batch(test, {0, 1});
  const nn::Tensor logits = model.forward(b.images, true);
  EXPECT_NO_THROW(model.backward(nn::Tensor(logits.shape())));
}

TEST(ScInference, FineSoftmaxConfigCloseToFloat) {
  // With a fine y grid and mild sub-sampling the SC model should rarely flip
  // predictions relative to float inference on an untrained net.
  const VitConfig cfg = tiny_config();
  VisionTransformer model(cfg, 3);
  const Dataset test = make_synthetic_vision(40, cfg.classes, 4, cfg.image_size);

  const double float_acc = evaluate(model, test);
  ScInferenceConfig sc_cfg;
  sc_cfg.softmax = tiny_softmax();
  sc_cfg.softmax.by = 32;
  sc_cfg.softmax.alpha_y = 1.5 / 32;
  const double sc_acc = evaluate_sc(model, test, sc_cfg);
  EXPECT_NEAR(sc_acc, float_acc, 35.0);  // same ballpark on random weights
}

TEST(ScInference, GeluHookApplied) {
  const VitConfig cfg = tiny_config();
  VisionTransformer model(cfg, 5);
  const Dataset test = make_synthetic_vision(10, cfg.classes, 6, cfg.image_size);
  ScInferenceConfig sc_cfg;
  sc_cfg.use_sc_softmax = false;
  sc_cfg.use_sc_gelu = true;
  sc_cfg.gelu_bsl = 8;
  EXPECT_NO_THROW(evaluate_sc(model, test, sc_cfg));
}

TEST(ScInference, CoarserSoftmaxMoreDisruptive) {
  // Accuracy deviation from float eval should not shrink when By collapses
  // from 32 to 4 (Table VI trend at the circuit level).
  const VitConfig cfg = tiny_config();
  VisionTransformer model(cfg, 7);
  const Dataset test = make_synthetic_vision(60, cfg.classes, 8, cfg.image_size);
  const double float_acc = evaluate(model, test);

  auto deviation = [&](int by) {
    ScInferenceConfig sc_cfg;
    sc_cfg.softmax = tiny_softmax();
    sc_cfg.softmax.by = by;
    sc_cfg.softmax.alpha_y = 1.5 / by;
    return std::fabs(evaluate_sc(model, test, sc_cfg) - float_acc);
  };
  EXPECT_LE(deviation(32), deviation(4) + 10.0);
}
