// Prefetching ingest pipeline (runtime/loader.h): in-order delivery with a
// partial tail batch, loop-mode wrapping, ring backpressure via recycle(),
// decode-error propagation, and concurrent-worker determinism of batch
// contents (batches are claimed out of order but handed over in order).

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <stdexcept>
#include <thread>
#include <vector>

#include "runtime/loader.h"

using namespace ascend::runtime;

namespace {

/// Decode stamp: sample i becomes [i, i + 0.5] so a batch's provenance is
/// fully checkable.
void stamp(int index, float* dst) {
  dst[0] = static_cast<float>(index);
  dst[1] = static_cast<float>(index) + 0.5f;
}

}  // namespace

TEST(Loader, DeliversAllSamplesInOrderWithPartialTail) {
  LoaderOptions opts;
  opts.workers = 3;
  opts.prefetch_batches = 2;
  opts.batch_size = 4;
  Loader loader(stamp, /*num_samples=*/10, /*sample_dim=*/2, opts);
  EXPECT_EQ(loader.total_batches(), 3);

  int next_sample = 0;
  for (long long seq = 0; seq < 3; ++seq) {
    const Loader::Batch b = loader.next();
    ASSERT_FALSE(b.end());
    EXPECT_EQ(b.seq, seq);
    EXPECT_EQ(b.dim, 2);
    EXPECT_EQ(b.size, seq < 2 ? 4 : 2);  // 10 = 4 + 4 + 2
    for (int r = 0; r < b.size; ++r, ++next_sample) {
      EXPECT_EQ(b.data[r * 2], static_cast<float>(next_sample));
      EXPECT_EQ(b.data[r * 2 + 1], static_cast<float>(next_sample) + 0.5f);
    }
    loader.recycle(b);
  }
  EXPECT_EQ(next_sample, 10);
  EXPECT_TRUE(loader.next().end());
  EXPECT_TRUE(loader.next().end()) << "the end marker is sticky";
}

TEST(Loader, LoopModeWrapsSampleIndices) {
  LoaderOptions opts;
  opts.workers = 2;
  opts.batch_size = 3;
  opts.loop = true;
  Loader loader(stamp, /*num_samples=*/5, /*sample_dim=*/2, opts);
  EXPECT_EQ(loader.total_batches(), -1);
  long long sample = 0;
  for (int i = 0; i < 7; ++i) {  // 21 samples: wraps the 5-sample set 4 times
    const Loader::Batch b = loader.next();
    ASSERT_FALSE(b.end());
    EXPECT_EQ(b.size, 3) << "loop mode always fills full batches";
    for (int r = 0; r < b.size; ++r, ++sample)
      EXPECT_EQ(b.data[r * 2], static_cast<float>(sample % 5));
    loader.recycle(b);
  }
}

TEST(Loader, RingBackpressureStallsWorkersUntilRecycle) {
  // With a depth-2 ring and no recycling, workers can hold at most 2 decoded
  // batches; the third decode must wait for a recycle, not overwrite a batch
  // the consumer still owns.
  std::atomic<int> decoded{0};
  LoaderOptions opts;
  opts.workers = 2;
  opts.prefetch_batches = 2;
  opts.batch_size = 1;
  opts.loop = true;
  Loader loader(
      [&decoded](int index, float* dst) {
        dst[0] = static_cast<float>(index);
        decoded.fetch_add(1);
      },
      /*num_samples=*/100, /*sample_dim=*/1, opts);
  const Loader::Batch b0 = loader.next();
  const Loader::Batch b1 = loader.next();
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_EQ(decoded.load(), 2) << "ring exhausted: no worker may decode ahead";
  EXPECT_EQ(b0.data[0], 0.0f);
  EXPECT_EQ(b1.data[0], 1.0f);
  loader.recycle(b0);
  const Loader::Batch b2 = loader.next();
  EXPECT_EQ(b2.data[0], 2.0f);
  loader.recycle(b1);
  loader.recycle(b2);
}

TEST(Loader, DecodeErrorPropagatesToNext) {
  LoaderOptions opts;
  opts.workers = 2;
  opts.batch_size = 2;
  Loader loader(
      [](int index, float* dst) {
        if (index == 5) throw std::runtime_error("corrupt sample");
        dst[0] = static_cast<float>(index);
      },
      /*num_samples=*/8, /*sample_dim=*/1, opts);
  EXPECT_THROW(
      {
        for (;;) {
          const Loader::Batch b = loader.next();
          if (b.end()) break;
          loader.recycle(b);
        }
      },
      std::runtime_error);
}

TEST(Loader, RecycleRejectsForeignBatch) {
  Loader loader(stamp, 4, 2, {});
  float bogus[2] = {0, 0};
  Loader::Batch fake;
  fake.data = bogus;
  fake.size = 1;
  EXPECT_THROW(loader.recycle(fake), std::invalid_argument);
  loader.recycle(Loader::Batch{});  // end marker: a no-op, not an error
}

TEST(Loader, ValidatesConstruction) {
  EXPECT_THROW(Loader(nullptr, 4, 2, {}), std::invalid_argument);
  EXPECT_THROW(Loader(stamp, 0, 2, {}), std::invalid_argument);
  EXPECT_THROW(Loader(stamp, 4, 0, {}), std::invalid_argument);
}

TEST(Loader, ManyWorkersStillHandOverInSequence) {
  // More workers than ring slots, tiny batches: heavy claim contention, yet
  // the consumer must observe seq 0, 1, 2, ... with correct contents.
  LoaderOptions opts;
  opts.workers = 4;
  opts.prefetch_batches = 3;
  opts.batch_size = 2;
  Loader loader(stamp, /*num_samples=*/64, /*sample_dim=*/2, opts);
  for (long long seq = 0; seq < 32; ++seq) {
    const Loader::Batch b = loader.next();
    ASSERT_FALSE(b.end());
    EXPECT_EQ(b.seq, seq);
    for (int r = 0; r < b.size; ++r)
      EXPECT_EQ(b.data[r * 2], static_cast<float>(seq * 2 + r));
    loader.recycle(b);
  }
  EXPECT_TRUE(loader.next().end());
}
