// Unit tests for the tensor container and core kernels.

#include <gtest/gtest.h>

#include <cmath>

#include "nn/ops.h"
#include "nn/rng.h"
#include "test_util.h"

using namespace ascend::nn;

TEST(TensorTest, ConstructionAndAccess) {
  Tensor t({2, 3});
  EXPECT_EQ(t.size(), 6u);
  EXPECT_EQ(t.rank(), 2u);
  EXPECT_EQ(t.dim(0), 2);
  t.at(1, 2) = 5.0f;
  EXPECT_FLOAT_EQ(t[5], 5.0f);
  EXPECT_THROW(Tensor({2, 0}), std::invalid_argument);
  EXPECT_THROW(t.dim(2), std::out_of_range);
}

TEST(TensorTest, FillSumMeanReshape) {
  Tensor t({4, 2}, 0.5f);
  EXPECT_DOUBLE_EQ(t.sum(), 4.0);
  EXPECT_DOUBLE_EQ(t.mean(), 0.5);
  const Tensor r = t.reshaped({2, 4});
  EXPECT_EQ(r.dim(0), 2);
  EXPECT_THROW(t.reshaped({3, 3}), std::invalid_argument);
  EXPECT_EQ(t.shape_str(), "[4,2]");
}

TEST(MatmulTest, KnownProduct) {
  Tensor a({2, 3});
  Tensor b({3, 2});
  for (int i = 0; i < 6; ++i) {
    a[static_cast<std::size_t>(i)] = static_cast<float>(i + 1);        // 1..6
    b[static_cast<std::size_t>(i)] = static_cast<float>(6 - i);        // 6..1
  }
  // a = [[1,2,3],[4,5,6]], b = [[6,5],[4,3],[2,1]]
  const Tensor c = matmul(a, b);
  EXPECT_FLOAT_EQ(c.at(0, 0), 20.0f);
  EXPECT_FLOAT_EQ(c.at(0, 1), 14.0f);
  EXPECT_FLOAT_EQ(c.at(1, 0), 56.0f);
  EXPECT_FLOAT_EQ(c.at(1, 1), 41.0f);
  EXPECT_THROW(matmul(a, a), std::invalid_argument);
}

TEST(MatmulTest, TransposedVariantsConsistent) {
  Rng rng(1);
  Tensor a({5, 7}), b({7, 4});
  rng.fill_normal(a, 0, 1);
  rng.fill_normal(b, 0, 1);
  const Tensor c = matmul(a, b);
  // matmul_tn(a^T stored as a_kxm, b) with a_kxm = a means computing a^T b:
  // check against explicit loop.
  const Tensor atb = matmul_tn(a, matmul(a, b));  // [7, 4]
  Tensor expect({7, 4});
  for (int i = 0; i < 7; ++i)
    for (int j = 0; j < 4; ++j) {
      float acc = 0;
      for (int k = 0; k < 5; ++k) acc += a.at(k, i) * c.at(k, j);
      expect.at(i, j) = acc;
    }
  for (std::size_t i = 0; i < expect.size(); ++i) EXPECT_NEAR(atb[i], expect[i], 1e-4);

  // matmul_nt(c, b): c [5,4] * b^T [4,7] -> [5,7]
  const Tensor cbt = matmul_nt(c, b);
  Tensor expect2({5, 7});
  for (int i = 0; i < 5; ++i)
    for (int j = 0; j < 7; ++j) {
      float acc = 0;
      for (int k = 0; k < 4; ++k) acc += c.at(i, k) * b.at(j, k);
      expect2.at(i, j) = acc;
    }
  for (std::size_t i = 0; i < expect2.size(); ++i) EXPECT_NEAR(cbt[i], expect2[i], 1e-4);
}

TEST(ElementwiseTest, AddSubMulScale) {
  Tensor a({2, 2}, 3.0f), b({2, 2}, 2.0f);
  EXPECT_FLOAT_EQ(add(a, b)[0], 5.0f);
  EXPECT_FLOAT_EQ(sub(a, b)[0], 1.0f);
  EXPECT_FLOAT_EQ(mul(a, b)[0], 6.0f);
  EXPECT_FLOAT_EQ(scale(a, -2.0f)[0], -6.0f);
  add_inplace(a, b);
  EXPECT_FLOAT_EQ(a[0], 5.0f);
}

TEST(GeluOp, ForwardValues) {
  Tensor x({1, 3});
  x[0] = 0.0f;
  x[1] = 2.0f;
  x[2] = -2.0f;
  const Tensor y = gelu_forward(x);
  EXPECT_NEAR(y[0], 0.0f, 1e-6);
  EXPECT_NEAR(y[1], 1.9545f, 1e-3);
  EXPECT_NEAR(y[2], -0.0455f, 1e-3);
}

TEST(GeluOp, GradCheck) {
  Rng rng(3);
  Tensor x({2, 5});
  rng.fill_normal(x, 0, 1.5);
  Tensor gy({2, 5});
  rng.fill_normal(gy, 0, 1);
  const Tensor gx = gelu_backward(x, gy);
  auto loss = [&]() {
    const Tensor y = gelu_forward(x);
    double l = 0;
    for (std::size_t i = 0; i < y.size(); ++i) l += y[i] * gy[i];
    return l;
  };
  EXPECT_LT(ascend::testing::max_grad_error(x, loss, gx), 2e-2);
}

TEST(SoftmaxOp, RowsSumToOne) {
  Rng rng(5);
  Tensor x({4, 6});
  rng.fill_normal(x, 0, 2);
  const Tensor y = softmax_rows(x);
  for (int r = 0; r < 4; ++r) {
    float sum = 0;
    for (int c = 0; c < 6; ++c) sum += y.at(r, c);
    EXPECT_NEAR(sum, 1.0f, 1e-5);
  }
}

TEST(SoftmaxOp, GradCheck) {
  Rng rng(7);
  Tensor x({3, 4});
  rng.fill_normal(x, 0, 1);
  Tensor gy({3, 4});
  rng.fill_normal(gy, 0, 1);
  const Tensor y = softmax_rows(x);
  const Tensor gx = softmax_rows_backward(y, gy);
  auto loss = [&]() {
    const Tensor yy = softmax_rows(x);
    double l = 0;
    for (std::size_t i = 0; i < yy.size(); ++i) l += yy[i] * gy[i];
    return l;
  };
  EXPECT_LT(ascend::testing::max_grad_error(x, loss, gx), 2e-2);
}
