// Unit tests for the FSM / saturating-counter baseline units.

#include <gtest/gtest.h>

#include <cmath>

#include "sc/fsm_units.h"

using namespace ascend::sc;

namespace {

/// Long-stream decoded output of a Stanh FSM at bipolar input value x.
double stanh_response(int n_states, double x, std::size_t bsl = 1 << 15) {
  LfsrSource src(17, 0x1234);
  const StochStream s = StochStream::encode(x, bsl, StochFormat::kBipolar, 1.0, src);
  FsmTanh fsm(n_states);
  std::size_t ones = 0;
  for (std::size_t t = 0; t < bsl; ++t) ones += fsm.step(s.bits.get(t)) ? 1 : 0;
  return 2.0 * static_cast<double>(ones) / static_cast<double>(bsl) - 1.0;
}

}  // namespace

TEST(FsmTanh, ApproximatesTanh) {
  // Brown-Card: output ~ tanh(N x / 2) for N-state counters. The finite-BSL
  // stationary distribution deviates in the knee region, so the tolerance is
  // generous; shape properties (sign, monotonicity) are asserted tightly.
  double prev = -2.0;
  for (double x : {-0.8, -0.4, 0.0, 0.4, 0.8}) {
    const double r = stanh_response(8, x);
    EXPECT_NEAR(r, std::tanh(4.0 * x), 0.25) << "x=" << x;
    EXPECT_GT(r, prev);
    if (x < -0.05) {
      EXPECT_LT(r, 0.0);
    }
    if (x > 0.05) {
      EXPECT_GT(r, 0.0);
    }
    prev = r;
  }
}

TEST(FsmTanh, SaturatesAtRails) {
  EXPECT_NEAR(stanh_response(8, 1.0), 1.0, 0.02);
  EXPECT_NEAR(stanh_response(8, -1.0), -1.0, 0.02);
}

TEST(FsmTanh, RejectsTooFewStates) { EXPECT_THROW(FsmTanh(1), std::invalid_argument); }

TEST(FsmExp, MonotoneDecreasingInInput) {
  auto response = [](double x) {
    LfsrSource src(16, 0x777);
    const std::size_t bsl = 1 << 14;
    const StochStream s = StochStream::encode(x, bsl, StochFormat::kBipolar, 1.0, src);
    FsmExp fsm(32, 4);
    std::size_t ones = 0;
    for (std::size_t t = 0; t < bsl; ++t) ones += fsm.step(s.bits.get(t)) ? 1 : 0;
    return static_cast<double>(ones) / static_cast<double>(bsl);
  };
  double prev = 2.0;
  for (double x : {-0.9, -0.5, 0.0, 0.5, 0.9}) {
    const double r = response(x);
    EXPECT_LT(r, prev + 0.03) << "x=" << x;
    prev = r;
  }
}

TEST(FsmExp, RejectsBadConfig) {
  EXPECT_THROW(FsmExp(8, 0), std::invalid_argument);
  EXPECT_THROW(FsmExp(8, 8), std::invalid_argument);
}

TEST(FsmGelu, PositiveRangeFollowsGelu) {
  FsmGelu unit(3.5);
  LfsrSource a(16, 0x1357), b(17, 0x2468);
  // Average several evaluations to squeeze the stochastic fluctuation.
  for (double x : {1.0, 2.0, 3.0}) {
    double acc = 0.0;
    const int reps = 16;
    for (int r = 0; r < reps; ++r) acc += unit.eval(x, 4096, a, b);
    const double gelu = 0.5 * x * (1.0 + std::erf(x / std::sqrt(2.0)));
    EXPECT_NEAR(acc / reps, gelu, 0.25) << "x=" << x;
  }
}

TEST(FsmGelu, NegativeRangeSaturatesAtZero) {
  // The systematic failure of Fig. 2(a): for x <= -1.5 the FSM output sits
  // near 0 instead of following GELU's dip.
  FsmGelu unit(3.5);
  LfsrSource a(16, 0x99), b(17, 0xAA);
  for (double x : {-3.0, -2.0}) {
    double acc = 0.0;
    const int reps = 16;
    for (int r = 0; r < reps; ++r) acc += unit.eval(x, 4096, a, b);
    EXPECT_NEAR(acc / reps, 0.0, 0.15) << "x=" << x;
  }
}

TEST(FsmGelu, ShortStreamsFluctuate) {
  // Different SNG seeds at BSL 128 must produce visibly different outputs —
  // the random error the paper's parallel design eliminates.
  FsmGelu unit(3.5);
  double lo = 1e9, hi = -1e9;
  for (int seed = 1; seed <= 12; ++seed) {
    LfsrSource a(16, static_cast<std::uint32_t>(seed * 1337));
    LfsrSource b(17, static_cast<std::uint32_t>(seed * 7331));
    const double y = unit.eval(1.0, 128, a, b);
    lo = std::min(lo, y);
    hi = std::max(hi, y);
  }
  EXPECT_GT(hi - lo, 0.05);
}

TEST(FsmRelu, BasicShape) {
  FsmRelu unit(2.0);
  LfsrSource a(16, 0x51), b(17, 0x52);
  double acc_pos = 0.0, acc_neg = 0.0;
  for (int r = 0; r < 16; ++r) {
    acc_pos += unit.eval(1.5, 4096, a, b);
    acc_neg += unit.eval(-1.5, 4096, a, b);
  }
  EXPECT_NEAR(acc_pos / 16, 1.5, 0.2);
  EXPECT_NEAR(acc_neg / 16, 0.0, 0.2);
}
