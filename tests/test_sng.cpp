// Unit tests for stochastic number generators.

#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "sc/sng.h"

using namespace ascend::sc;

class LfsrPeriod : public ::testing::TestWithParam<int> {};

TEST_P(LfsrPeriod, IsMaximal) {
  const int width = GetParam();
  Lfsr lfsr(width, 1);
  const std::uint32_t period = (1u << width) - 1;
  std::set<std::uint32_t> seen;
  for (std::uint32_t i = 0; i < period; ++i) {
    const std::uint32_t v = lfsr.next();
    EXPECT_GE(v, 1u);
    EXPECT_LT(v, 1u << width);
    EXPECT_TRUE(seen.insert(v).second) << "state repeated before full period, width=" << width;
  }
  EXPECT_EQ(seen.size(), period);
}

INSTANTIATE_TEST_SUITE_P(Widths, LfsrPeriod, ::testing::Values(3, 4, 5, 6, 7, 8, 9, 10, 11, 12));

TEST(Lfsr, RejectsBadWidth) {
  EXPECT_THROW(Lfsr(2), std::invalid_argument);
  EXPECT_THROW(Lfsr(25), std::invalid_argument);
}

TEST(Lfsr, ZeroSeedReplaced) {
  Lfsr lfsr(8, 0);
  EXPECT_GE(lfsr.next(), 1u);
}

TEST(VanDerCorput, BitReversalUniformity) {
  VanDerCorput vdc(4, 0);
  std::set<std::uint32_t> seen;
  for (int i = 0; i < 16; ++i) seen.insert(vdc.next());
  EXPECT_EQ(seen.size(), 16u);  // a full cycle covers every value once
}

TEST(VanDerCorput, FirstValuesMatchDefinition) {
  VanDerCorput vdc(3, 0);
  // counter 0,1,2,3 -> reversed: 0,4,2,6
  EXPECT_EQ(vdc.next(), 0u);
  EXPECT_EQ(vdc.next(), 4u);
  EXPECT_EQ(vdc.next(), 2u);
  EXPECT_EQ(vdc.next(), 6u);
}

class StreamProbability : public ::testing::TestWithParam<double> {};

TEST_P(StreamProbability, LfsrStreamApproximatesP) {
  const double p = GetParam();
  LfsrSource src(16, 0xBEEF);
  const std::size_t len = 1u << 14;
  BitVec s = generate_stream(p, len, src);
  const double got = static_cast<double>(s.count()) / static_cast<double>(len);
  EXPECT_NEAR(got, p, 0.02);
}

TEST_P(StreamProbability, VdcStreamIsLowDiscrepancy) {
  const double p = GetParam();
  VdcSource src(14, 0);
  const std::size_t len = 1u << 14;  // full VdC cycle -> near-exact count
  BitVec s = generate_stream(p, len, src);
  const double got = static_cast<double>(s.count()) / static_cast<double>(len);
  EXPECT_NEAR(got, p, 2.0 / static_cast<double>(len) + 1e-9);
}

TEST_P(StreamProbability, EvenStreamHasExactCount) {
  const double p = GetParam();
  const std::size_t len = 256;
  BitVec s = generate_even_stream(p, len);
  EXPECT_EQ(s.count(), static_cast<std::size_t>(std::lround(p * len)));
}

INSTANTIATE_TEST_SUITE_P(Probs, StreamProbability,
                         ::testing::Values(0.0, 0.1, 0.25, 0.5, 0.75, 0.9, 1.0));

TEST(EvenStream, SpacingIsBalanced) {
  // With p = 0.5 the even stream must alternate regularly: no window of 4
  // consecutive bits may deviate from 2 ones by more than 1.
  BitVec s = generate_even_stream(0.5, 64);
  for (std::size_t i = 0; i + 4 <= s.size(); ++i) {
    int ones = 0;
    for (std::size_t j = i; j < i + 4; ++j) ones += s.get(j) ? 1 : 0;
    EXPECT_NEAR(ones, 2, 1);
  }
}
