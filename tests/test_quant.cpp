// Unit tests for LSQ quantization.

#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "nn/quant.h"
#include "nn/rng.h"

using namespace ascend::nn;

TEST(QuantSpecTest, FromBslLevels) {
  const QuantSpec t = QuantSpec::from_bsl(2);
  EXPECT_EQ(t.qn, -1);
  EXPECT_EQ(t.qp, 1);
  EXPECT_EQ(t.levels(), 3);  // ternary, matching a 2b thermometer BSL
  const QuantSpec r = QuantSpec::from_bsl(16);
  EXPECT_EQ(r.levels(), 17);
  EXPECT_THROW(QuantSpec::from_bsl(3), std::invalid_argument);
  EXPECT_THROW(QuantSpec::from_bsl(0), std::invalid_argument);
  EXPECT_FALSE(QuantSpec::off().enabled);
}

TEST(LsqQuantizerTest, DisabledIsIdentity) {
  LsqQuantizer q;
  Rng rng(1);
  Tensor x({3, 3});
  rng.fill_normal(x, 0, 1);
  const Tensor y = q.forward(x);
  for (std::size_t i = 0; i < x.size(); ++i) EXPECT_FLOAT_EQ(y[i], x[i]);
  const Tensor g = q.backward(y);
  for (std::size_t i = 0; i < x.size(); ++i) EXPECT_FLOAT_EQ(g[i], y[i]);
}

TEST(LsqQuantizerTest, TernaryOutputOnGrid) {
  LsqQuantizer q(QuantSpec::ternary());
  Rng rng(2);
  Tensor x({64, 4});
  rng.fill_normal(x, 0, 1);
  const Tensor y = q.forward(x);
  const float s = q.step();
  ASSERT_GT(s, 0.0f);
  std::set<int> levels;
  for (std::size_t i = 0; i < y.size(); ++i) {
    const float level = y[i] / s;
    EXPECT_NEAR(level, std::round(level), 1e-4);
    levels.insert(static_cast<int>(std::lround(level)));
    EXPECT_GE(level, -1.01f);
    EXPECT_LE(level, 1.01f);
  }
  EXPECT_GE(levels.size(), 2u);  // a Gaussian hits multiple levels
}

TEST(LsqQuantizerTest, SteMasksClippedElements) {
  LsqQuantizer q(QuantSpec::ternary());
  // Initialise the learned step on well-behaved data first (the LSQ init
  // scales with mean|x|, so the outliers must not be part of it).
  Tensor warm({1, 4});
  warm[0] = 0.5f;
  warm[1] = -0.5f;
  warm[2] = 0.3f;
  warm[3] = -0.2f;
  (void)q.forward(warm);
  const float s = q.step();
  ASSERT_GT(s, 0.0f);

  Tensor x({1, 4});
  x[0] = 0.2f * s;    // inside
  x[1] = 100.0f * s;  // clipped high
  x[2] = -100.0f * s; // clipped low
  x[3] = 0.0f;        // inside
  (void)q.forward(x);
  Tensor gy({1, 4}, 1.0f);
  const Tensor gx = q.backward(gy);
  EXPECT_FLOAT_EQ(gx[1], 0.0f);
  EXPECT_FLOAT_EQ(gx[2], 0.0f);
  EXPECT_FLOAT_EQ(gx[0], 1.0f);
  EXPECT_FLOAT_EQ(gx[3], 1.0f);
}

TEST(LsqQuantizerTest, StepGradientMatchesLsqRule) {
  // The LSQ step gradient is a *surrogate* (the STE flows through round()),
  // so it intentionally differs from the numerical derivative of the
  // piecewise-constant forward. Check against an independent implementation
  // of the published rule: d v/d s = (q - x/s) inside, q when clipped.
  LsqQuantizer q(QuantSpec::from_bsl(4));
  Rng rng(3);
  Tensor x({8, 8});
  rng.fill_normal(x, 0, 1);
  Tensor gy({8, 8});
  rng.fill_normal(gy, 0, 1);

  (void)q.forward(x);  // initialise the step
  std::vector<Param*> ps;
  q.collect_params(ps);
  ASSERT_EQ(ps.size(), 1u);
  Param* step = ps[0];
  step->zero_grad();
  (void)q.forward(x);
  (void)q.backward(gy);
  const float analytic = step->grad[0];

  const float s = step->value[0];
  const float gradscale = 1.0f / std::sqrt(static_cast<float>(x.size()) * 2.0f);
  double expect = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    const float xs = x[i] / s;
    const float qv = std::clamp(std::round(xs), -2.0f, 2.0f);
    const bool inside = xs > -2.0f && xs < 2.0f;
    expect += static_cast<double>(gy[i]) * (inside ? (qv - xs) : qv);
  }
  EXPECT_NEAR(analytic, static_cast<float>(expect) * gradscale,
              1e-4f + 0.01f * std::fabs(analytic));
}

TEST(LsqQuantizerTest, ResetSpecReinitialises) {
  LsqQuantizer q(QuantSpec::ternary());
  Rng rng(4);
  Tensor x({4, 4});
  rng.fill_normal(x, 0, 1);
  (void)q.forward(x);
  const float s1 = q.step();
  q.reset_spec(QuantSpec::from_bsl(16));
  (void)q.forward(x);
  const float s2 = q.step();
  EXPECT_NE(s1, s2);  // finer grid -> smaller initial step
  EXPECT_LT(s2, s1);
}

TEST(LsqQuantizerTest, FrozenInferMatchesInferAndMemoizes) {
  LsqQuantizer q(QuantSpec::ternary());
  Rng rng(6);
  Tensor w({4, 4});
  rng.fill_normal(w, 0, 1);
  (void)q.forward(w);  // latch the step
  EXPECT_FALSE(q.frozen());
  const Tensor ref = q.infer(w);
  const Tensor& a = q.frozen_infer(w);
  EXPECT_TRUE(q.frozen());
  for (std::size_t i = 0; i < w.size(); ++i) EXPECT_EQ(a[i], ref[i]);
  // Memoized: the second call hands back the same tensor object.
  EXPECT_EQ(&q.frozen_infer(w), &a);
}

TEST(LsqQuantizerTest, FrozenSnapshotThawedByResetSpecAndTraining) {
  LsqQuantizer q(QuantSpec::ternary());
  Rng rng(7);
  Tensor w({4, 4});
  rng.fill_normal(w, 0, 1);
  (void)q.forward(w);
  (void)q.frozen_infer(w);
  ASSERT_TRUE(q.frozen());

  // reset_spec (the apply_precision path) must thaw; the rebuilt snapshot
  // reflects the new spec, bit-exact with the per-call path.
  q.reset_spec(QuantSpec::from_bsl(16));
  EXPECT_FALSE(q.frozen());
  const Tensor fresh = q.infer(w);
  const Tensor& rebuilt = q.frozen_infer(w);
  for (std::size_t i = 0; i < w.size(); ++i) EXPECT_EQ(rebuilt[i], fresh[i]);

  // A training forward must thaw too (the step is about to move).
  (void)q.forward(w);
  EXPECT_FALSE(q.frozen());

  // Disabled spec: frozen_infer is the identity and never freezes.
  LsqQuantizer off;
  const Tensor& same = off.frozen_infer(w);
  EXPECT_EQ(&same, &w);
  EXPECT_FALSE(off.frozen());
}

TEST(LsqQuantizerTest, CopiesDropTheFrozenSnapshot) {
  LsqQuantizer q(QuantSpec::ternary());
  Rng rng(8);
  Tensor w({3, 3});
  rng.fill_normal(w, 0, 1);
  (void)q.forward(w);
  (void)q.frozen_infer(w);
  ASSERT_TRUE(q.frozen());
  LsqQuantizer copy(q);
  EXPECT_FALSE(copy.frozen());
  EXPECT_EQ(copy.step(), q.step());
  // The copy rebuilds an identical snapshot from its own state.
  const Tensor& a = q.frozen_infer(w);
  const Tensor& b = copy.frozen_infer(w);
  EXPECT_NE(&a, &b);
  for (std::size_t i = 0; i < w.size(); ++i) EXPECT_EQ(a[i], b[i]);
}

TEST(LsqQuantizerTest, QuantizationErrorShrinksWithBsl) {
  Rng rng(5);
  Tensor x({128, 4});
  rng.fill_normal(x, 0, 1);
  auto mean_err = [&](int bsl) {
    LsqQuantizer q(QuantSpec::from_bsl(bsl));
    const Tensor y = q.forward(x);
    double e = 0;
    for (std::size_t i = 0; i < x.size(); ++i) e += std::fabs(y[i] - x[i]);
    return e / static_cast<double>(x.size());
  };
  EXPECT_GT(mean_err(2), mean_err(8));
  EXPECT_GT(mean_err(8), mean_err(32));
}
