// Tests for the batched SC inference runtime: thread-pool ordering/shutdown,
// batcher cutoff behaviour, bit-exact agreement of the tf_cache LUTs with the
// circuit emulators, and engine-vs-manual-hook equivalence.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cmath>
#include <memory>
#include <numeric>
#include <thread>

#include "runtime/batcher.h"
#include "runtime/engine.h"
#include "runtime/tf_cache.h"
#include "runtime/thread_pool.h"
#include "vit/train.h"

using namespace ascend;
using namespace ascend::runtime;

// ---------------------------------------------------------------------------
// ThreadPool
// ---------------------------------------------------------------------------

TEST(ThreadPool, SingleWorkerRunsTasksInSubmissionOrder) {
  ThreadPool pool(1);
  std::vector<int> order;
  std::vector<std::future<void>> futs;
  for (int i = 0; i < 64; ++i) futs.push_back(pool.submit([&order, i] { order.push_back(i); }));
  for (auto& f : futs) f.get();
  ASSERT_EQ(order.size(), 64u);
  for (int i = 0; i < 64; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(ThreadPool, SubmitPropagatesResultsAndExceptions) {
  ThreadPool pool(2);
  auto ok = pool.submit([] { return 6 * 7; });
  auto bad = pool.submit([]() -> int { throw std::runtime_error("boom"); });
  EXPECT_EQ(ok.get(), 42);
  EXPECT_THROW(bad.get(), std::runtime_error);
}

TEST(ThreadPool, DestructorDrainsQueuedTasks) {
  std::atomic<int> done{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 100; ++i)
      pool.submit([&done] {
        std::this_thread::sleep_for(std::chrono::microseconds(100));
        done.fetch_add(1);
      });
  }  // destructor must wait for every accepted task
  EXPECT_EQ(done.load(), 100);
}

TEST(ThreadPool, ParallelForCoversRangeExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(1000);
  pool.parallel_for(7, 997, [&hits](int lo, int hi) {
    for (int i = lo; i < hi; ++i) hits[static_cast<std::size_t>(i)].fetch_add(1);
  });
  for (int i = 0; i < 1000; ++i)
    EXPECT_EQ(hits[static_cast<std::size_t>(i)].load(), (i >= 7 && i < 997) ? 1 : 0) << i;
}

TEST(ThreadPool, ParallelForSmallChunksCoverRangeExactlyOnce) {
  ThreadPool pool(3);
  std::vector<std::atomic<int>> hits(500);
  int max_seen = 0;
  std::mutex mu;
  pool.parallel_for(
      3, 487,
      [&](int lo, int hi) {
        for (int i = lo; i < hi; ++i) hits[static_cast<std::size_t>(i)].fetch_add(1);
        std::lock_guard<std::mutex> lock(mu);
        max_seen = std::max(max_seen, hi - lo);
      },
      /*max_chunk=*/8);
  for (int i = 0; i < 500; ++i)
    EXPECT_EQ(hits[static_cast<std::size_t>(i)].load(), (i >= 3 && i < 487) ? 1 : 0) << i;
  EXPECT_LE(max_seen, 8);
}

TEST(ThreadPool, ParallelForEmptyRangeIsNoop) {
  ThreadPool pool(2);
  pool.parallel_for(5, 5, [](int, int) { FAIL() << "body must not run"; });
}

TEST(ThreadPool, ParallelForDrainsAllChunksBeforeRethrowing) {
  ThreadPool pool(4);
  std::atomic<int> visited{0};
  EXPECT_THROW(pool.parallel_for(0, 400,
                                 [&visited](int lo, int hi) {
                                   for (int i = lo; i < hi; ++i) visited.fetch_add(1);
                                   if (lo == 0) throw std::runtime_error("chunk failure");
                                 }),
               std::runtime_error);
  // No chunk was abandoned mid-flight and the pool is still serviceable.
  EXPECT_EQ(visited.load(), 400);
  EXPECT_EQ(pool.submit([] { return 1; }).get(), 1);
}

// ---------------------------------------------------------------------------
// Batcher
// ---------------------------------------------------------------------------

TEST(Batcher, SizeCutoffClosesFullBatchBeforeDeadline) {
  Batcher b(4, std::chrono::microseconds(2'000'000));  // 2 s latency budget
  std::vector<std::future<Prediction>> futs;
  for (int i = 0; i < 6; ++i) futs.push_back(b.enqueue({1.0f}));
  const auto t0 = std::chrono::steady_clock::now();
  const auto batch = b.next_batch();
  const auto ms =
      std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() - t0).count();
  EXPECT_EQ(batch.size(), 4u);   // size cutoff, not the 2 s deadline
  EXPECT_LT(ms, 1000.0);
  b.close();
  EXPECT_EQ(b.next_batch().size(), 2u);  // remainder drains after close
  EXPECT_TRUE(b.next_batch().empty());
}

TEST(Batcher, LatencyCutoffReleasesPartialBatch) {
  Batcher b(64, std::chrono::microseconds(30'000));  // 30 ms budget
  auto f1 = b.enqueue({1.0f});
  auto f2 = b.enqueue({2.0f});
  const auto t0 = std::chrono::steady_clock::now();
  const auto batch = b.next_batch();
  const auto ms =
      std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() - t0).count();
  EXPECT_EQ(batch.size(), 2u);
  EXPECT_GE(ms, 20.0);  // held for (most of) the budget waiting for more work
  b.close();
}

TEST(Batcher, EnqueueAfterCloseThrows) {
  Batcher b(4, std::chrono::microseconds(1000));
  b.close();
  EXPECT_THROW(b.enqueue({1.0f}), std::runtime_error);
  EXPECT_TRUE(b.next_batch().empty());
}

TEST(Batcher, RejectsBadConfig) {
  EXPECT_THROW(Batcher(0, std::chrono::microseconds(1)), std::invalid_argument);
  EXPECT_THROW(Batcher(1, std::chrono::microseconds(-1)), std::invalid_argument);
}

// ---------------------------------------------------------------------------
// tf_cache — the LUTs must be bit-exact with the circuit emulators.
// ---------------------------------------------------------------------------

TEST(GeluLut, BitExactWithCircuitEmulationAcrossBsls) {
  for (int b : {2, 4, 8, 16}) {
    const sc::GateAssistedSI block = sc::make_gelu_block(b, -4.0, 4.0, 16);
    const GeluLut lut(block);
    for (int i = 0; i <= 2000; ++i) {
      const double x = -5.0 + 10.0 * i / 2000.0;  // sweep past saturation
      ASSERT_EQ(lut(x), block.transfer(x)) << "B=" << b << " x=" << x;
    }
  }
}

TEST(GeluLut, TableMatchesBitLevelGateLogic) {
  const sc::GateAssistedSI block = sc::make_gelu_block(8, -4.0, 4.0, 16);
  const GeluLut lut(block);
  ASSERT_EQ(lut.table().size(), static_cast<std::size_t>(block.lin()) + 1);
  for (int n = 0; n <= block.lin(); ++n) {
    const sc::ThermStream in =
        sc::ThermStream::from_value(sc::ThermValue{n, block.lin(), block.alpha_in()});
    EXPECT_EQ(lut.table()[static_cast<std::size_t>(n)], block.apply(in).value()) << "n=" << n;
  }
}

TEST(GateSiLut, AutoKeyedCacheServesArbitrarySynthesizedBlocks) {
  // A non-GELU nonlinearity through the generic gate-SI entry point.
  const auto sigmoid = [](double x) { return 1.0 / (1.0 + std::exp(-x)); };
  const sc::GateAssistedSI block = sc::GateAssistedSI::synthesize(sigmoid, 16, 4, 0.5, 0.25);
  TfCache cache;
  const GateSiLut* a = &cache.gate_si(block);
  const GateSiLut* b = &cache.gate_si(block);
  EXPECT_EQ(a, b) << "same block must hit the same cache entry";
  for (int i = 0; i <= 400; ++i) {
    const double x = -5.0 + 10.0 * i / 400.0;
    ASSERT_EQ((*a)(x), block.transfer(x)) << "x=" << x;
  }
  // A different table is a different entry, never a stale hit.
  const sc::GateAssistedSI other = sc::GateAssistedSI::synthesize(sigmoid, 16, 8, 0.5, 0.125);
  EXPECT_NE(&cache.gate_si(other), a);
  EXPECT_NE(gate_si_cache_key(block), gate_si_cache_key(other));
}

TEST(BernsteinLut, BitExactWithStochasticEmulatorAcrossSeedsAndBsls) {
  const sc::BernsteinUnit unit =
      sc::BernsteinUnit::fit([](double u) { return 0.5 + 0.4 * std::sin(3.0 * u); }, 5);
  for (std::size_t bsl : {64u, 256u}) {
    for (std::uint64_t seed : {1ull, 0xDEADBEEFull}) {
      const BernsteinLut lut(unit, bsl, seed);
      // Dense grid plus the exact plateau thresholds' neighbourhoods: u just
      // below, at, and above a dyadic sample must all match the emulator.
      for (int i = 0; i <= 300; ++i) {
        const double u = static_cast<double>(i) / 300.0;
        ASSERT_EQ(lut(u), unit.eval_stochastic(u, bsl, seed)) << "u=" << u << " bsl=" << bsl;
      }
      for (double base : {3.0 / 8192.0, 977.0 / 8192.0, 8191.0 / 8192.0}) {
        for (double u : {std::nextafter(base, 0.0), base, std::nextafter(base, 1.0)})
          ASSERT_EQ(lut(u), unit.eval_stochastic(u, bsl, seed)) << "u=" << u;
      }
      // Out-of-range inputs clamp identically.
      ASSERT_EQ(lut(-0.5), unit.eval_stochastic(-0.5, bsl, seed));
      ASSERT_EQ(lut(1.5), unit.eval_stochastic(1.5, bsl, seed));
    }
  }
}

TEST(BernsteinGeluLut, BitExactWithBernsteinGeluAndCached) {
  const sc::BernsteinGelu block(4);
  TfCache cache;
  const BernsteinGeluLut* lut = &cache.bernstein(block, 128, 7);
  EXPECT_EQ(lut, &cache.bernstein(block, 128, 7));
  EXPECT_NE(lut, &cache.bernstein(block, 128, 8)) << "seed is part of the key";
  EXPECT_NE(lut, &cache.bernstein(block, 256, 7)) << "bsl is part of the key";
  for (int i = 0; i <= 500; ++i) {
    const double x = -5.0 + 7.0 * i / 500.0;  // sweep past the input clamp
    ASSERT_EQ((*lut)(x), block.eval_stochastic(x, 128, 7)) << "x=" << x;
  }
}

TEST(SoftmaxLut, BitExactWithCountLevelEmulation) {
  std::vector<sc::SoftmaxIterConfig> configs;
  {
    sc::SoftmaxIterConfig cfg;  // Table II-style defaults at m = 16
    cfg.m = 16;
    configs.push_back(cfg);
    cfg.centered_subsample = false;
    configs.push_back(cfg);
    cfg = sc::SoftmaxIterConfig{};  // the serve example's configuration
    cfg.m = 16;
    cfg.bx = 8;
    cfg.alpha_x = 1.0;
    cfg.by = 32;
    cfg.k = 3;
    cfg.s1 = 4;
    cfg.s2 = 2;
    cfg.alpha_y = 3.0 / 32;
    configs.push_back(cfg);
    cfg.k = 1;
    configs.push_back(cfg);
  }
  for (const auto& cfg : configs) {
    const SoftmaxLut lut(cfg);
    const auto rows = sc::sample_attention_logits(cfg.m, 50, /*seed=*/99);
    for (const auto& row : rows) {
      const auto fast = lut(row);
      const auto ref = sc::softmax_iterative_sc(row, cfg);
      ASSERT_EQ(fast.size(), ref.size());
      for (std::size_t i = 0; i < ref.size(); ++i)
        ASSERT_EQ(fast[i], ref[i]) << "k=" << cfg.k << " s1=" << cfg.s1 << " i=" << i;
    }
  }
}

TEST(SoftmaxLut, BitExactWithBitLevelCircuit) {
  sc::SoftmaxIterConfig cfg;
  cfg.m = 8;
  cfg.s1 = 16;
  cfg.s2 = 4;
  const SoftmaxLut lut(cfg);
  const auto rows = sc::sample_attention_logits(cfg.m, 3, /*seed=*/5);
  for (const auto& row : rows) {
    const auto fast = lut(row);
    const auto bits = sc::softmax_iterative_sc_bits(row, cfg);
    for (std::size_t i = 0; i < bits.size(); ++i) ASSERT_EQ(fast[i], bits[i]);
  }
}

TEST(SoftmaxLut, RejectsWrongInputSize) {
  sc::SoftmaxIterConfig cfg;
  cfg.m = 16;
  const SoftmaxLut lut(cfg);
  EXPECT_THROW(lut(std::vector<double>(7, 0.0)), std::invalid_argument);
}

TEST(SoftmaxFsmLut, BitExactWithEmulatorAcrossConfigs) {
  std::vector<sc::FsmSoftmaxConfig> configs;
  {
    sc::FsmSoftmaxConfig cfg;  // Table IV-style defaults at m = 8
    cfg.m = 8;
    cfg.bsl = 128;
    configs.push_back(cfg);
    cfg.bsl = 512;
    cfg.n_states = 32;
    cfg.g = 4;
    configs.push_back(cfg);
    cfg = sc::FsmSoftmaxConfig{};
    cfg.m = 16;
    cfg.bsl = 256;
    cfg.scale = 6.0;
    cfg.quotient_bits = 8;
    cfg.seed = 0xBEEF;
    configs.push_back(cfg);
  }
  for (const auto& cfg : configs) {
    const SoftmaxFsmLut lut(cfg);
    const auto rows = sc::sample_attention_logits(cfg.m, 25, /*seed=*/77);
    for (const auto& row : rows) {
      const auto fast = lut(row);
      const auto ref = sc::softmax_fsm(row, cfg);
      ASSERT_EQ(fast.size(), ref.size());
      for (std::size_t i = 0; i < ref.size(); ++i)
        ASSERT_EQ(fast[i], ref[i]) << "bsl=" << cfg.bsl << " seed=" << cfg.seed << " i=" << i;
    }
  }
}

TEST(SoftmaxFsmLut, RejectsBadInput) {
  sc::FsmSoftmaxConfig cfg;
  cfg.m = 8;
  const SoftmaxFsmLut lut(cfg);
  EXPECT_THROW(lut(std::vector<double>(3, 0.0)), std::invalid_argument);
  sc::FsmSoftmaxConfig bad = cfg;
  bad.bsl = 0;
  EXPECT_THROW(SoftmaxFsmLut{bad}, std::invalid_argument);
  bad = cfg;
  bad.scale = 0.0;  // the emulator's SNG rejects this too
  EXPECT_THROW(SoftmaxFsmLut{bad}, std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Cached MAE protocols — bit-identical to the sc:: sweep protocols.
// ---------------------------------------------------------------------------

TEST(CachedMae, SoftmaxIterIdenticalToEmulatedProtocol) {
  TfCache cache;
  sc::SoftmaxIterConfig cfg;
  cfg.m = 16;
  for (std::uint64_t seed : {99ull, 808ull}) {
    const double cached = softmax_sc_mae_cached(cfg, 8, seed, cache);
    const double emulated = sc::softmax_sc_mae(cfg, 8, seed);
    EXPECT_EQ(cached, emulated) << "seed=" << seed;
  }
}

TEST(CachedMae, FsmPerRowSeedsIdenticalToEmulatedProtocol) {
  TfCache cache;
  sc::FsmSoftmaxConfig cfg;
  cfg.m = 8;
  cfg.bsl = 64;  // keep the per-row table builds cheap
  const double cached = softmax_fsm_mae_cached(cfg, 6, 77, cache, FsmSeedMode::kPerRowSeeds);
  const double emulated = sc::softmax_fsm_mae(cfg, 6, 77);
  EXPECT_EQ(cached, emulated);
  EXPECT_EQ(cache.size(), 6u) << "one threshold table per row seed";
  // A second run of the same protocol is served entirely from the cache.
  EXPECT_EQ(softmax_fsm_mae_cached(cfg, 6, 77, cache, FsmSeedMode::kPerRowSeeds), emulated);
  EXPECT_EQ(cache.size(), 6u);
}

TEST(CachedMae, FsmSharedSeedVariantUsesOneTable) {
  TfCache cache;
  sc::FsmSoftmaxConfig cfg;
  cfg.m = 8;
  cfg.bsl = 64;
  const double shared = softmax_fsm_mae_cached(cfg, 6, 77, cache, FsmSeedMode::kSharedSeed);
  EXPECT_EQ(cache.size(), 1u) << "every row must share the cfg.seed table";
  EXPECT_GT(shared, 0.0);
  EXPECT_LT(shared, 1.0);
}

TEST(TfCache, CachesFsmSoftmaxPerConfig) {
  TfCache cache;
  sc::FsmSoftmaxConfig cfg;
  cfg.m = 8;
  cfg.bsl = 128;
  const SoftmaxFsmLut* a = &cache.softmax_fsm(cfg);
  const SoftmaxFsmLut* b = &cache.softmax_fsm(cfg);
  EXPECT_EQ(a, b);
  cfg.seed += 1;  // the seed changes the LFSR streams, so it must key the cache
  const SoftmaxFsmLut* c = &cache.softmax_fsm(cfg);
  EXPECT_NE(a, c);
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_NE(softmax_fsm_cache_key(cfg), softmax_fsm_cache_key(sc::FsmSoftmaxConfig{}));
}

TEST(TfCache, ReturnsStableReferencesPerConfig) {
  TfCache cache;
  sc::SoftmaxIterConfig cfg;
  cfg.m = 16;
  const SoftmaxLut* a = &cache.softmax(cfg);
  const SoftmaxLut* b = &cache.softmax(cfg);
  EXPECT_EQ(a, b);
  cfg.k = 4;
  const SoftmaxLut* c = &cache.softmax(cfg);
  EXPECT_NE(a, c);
  EXPECT_EQ(cache.size(), 2u);
  const GeluLut* g1 = &cache.gelu(8, -4.0, 4.0, 16);
  const GeluLut* g2 = &cache.gelu(8, -4.0, 4.0, 16);
  EXPECT_EQ(g1, g2);
  EXPECT_EQ(cache.size(), 3u);
}

// ---------------------------------------------------------------------------
// InferenceEngine
// ---------------------------------------------------------------------------

namespace {

vit::VitConfig tiny_topology() {
  vit::VitConfig cfg;
  cfg.image_size = 16;
  cfg.patch_size = 8;  // 4 tokens
  cfg.dim = 16;
  cfg.layers = 1;
  cfg.heads = 2;
  cfg.mlp_ratio = 2;
  cfg.classes = 4;
  return cfg;
}

vit::ScInferenceConfig tiny_sc_config() {
  vit::ScInferenceConfig cfg;
  cfg.use_sc_softmax = true;
  cfg.use_sc_gelu = true;
  cfg.gelu_bsl = 8;
  cfg.gelu_range = 6.0;
  return cfg;
}

}  // namespace

TEST(InferenceEngine, EvaluateScMatchesManualCircuitHooks) {
  const vit::VitConfig top = tiny_topology();
  vit::VisionTransformer model(top, /*seed=*/21);
  const vit::Dataset data = vit::make_synthetic_vision(48, top.classes, 31, top.image_size);
  const vit::ScInferenceConfig cfg = tiny_sc_config();

  // Reference: the pre-runtime code path — hooks built directly on the
  // circuit emulators, evaluated through vit::evaluate.
  sc::SoftmaxIterConfig sm = cfg.softmax;
  sm.m = top.tokens();
  model.set_softmax_hook([sm](const nn::Tensor& scores) {
    nn::Tensor out({scores.dim(0), scores.dim(1)});
    std::vector<double> row(static_cast<std::size_t>(scores.dim(1)));
    for (int r = 0; r < scores.dim(0); ++r) {
      for (int c = 0; c < scores.dim(1); ++c) row[static_cast<std::size_t>(c)] = scores.at(r, c);
      const auto y = sc::softmax_iterative_sc(row, sm);
      for (int c = 0; c < scores.dim(1); ++c)
        out.at(r, c) = static_cast<float>(y[static_cast<std::size_t>(c)]);
    }
    return out;
  });
  auto block = std::make_shared<sc::GateAssistedSI>(
      sc::make_gelu_block(cfg.gelu_bsl, -cfg.gelu_range, cfg.gelu_range, 16));
  model.set_gelu_hook([block](const nn::Tensor& x) {
    nn::Tensor y(x.shape());
    for (std::size_t i = 0; i < x.size(); ++i) y[i] = static_cast<float>(block->transfer(x[i]));
    return y;
  });
  const double ref_acc = vit::evaluate(model, data);
  model.clear_hooks();

  const double engine_acc = vit::evaluate_sc(model, data, cfg);
  EXPECT_EQ(engine_acc, ref_acc);

  // The engine restored the hooks: a plain evaluate now uses exact blocks.
  const double float_acc = vit::evaluate(model, data);
  const double float_acc2 = vit::evaluate(model, data);
  EXPECT_EQ(float_acc, float_acc2);
}

TEST(InferenceEngine, CachedAndUncachedPathsAgree) {
  const vit::VitConfig top = tiny_topology();
  vit::VisionTransformer model(top, /*seed=*/22);
  const vit::Dataset data = vit::make_synthetic_vision(32, top.classes, 32, top.image_size);
  const vit::ScInferenceConfig cfg = tiny_sc_config();

  EngineOptions cached;
  cached.threads = 2;
  double acc_cached;
  {
    InferenceEngine engine(model, cfg, cached);
    acc_cached = engine.evaluate(data);
  }
  EngineOptions uncached = cached;
  uncached.use_tf_cache = false;
  InferenceEngine engine(model, cfg, uncached);
  EXPECT_EQ(engine.evaluate(data), acc_cached);
}

TEST(InferenceEngine, SubmitAgreesWithSynchronousBatchPath) {
  const vit::VitConfig top = tiny_topology();
  vit::VisionTransformer model(top, /*seed=*/23);
  const vit::Dataset data = vit::make_synthetic_vision(24, top.classes, 33, top.image_size);
  const vit::ScInferenceConfig cfg = tiny_sc_config();

  EngineOptions opts;
  opts.threads = 2;
  opts.max_batch = 8;
  opts.max_delay = std::chrono::microseconds(5000);
  InferenceEngine engine(model, cfg, opts);

  std::vector<int> idx(static_cast<std::size_t>(data.size()));
  std::iota(idx.begin(), idx.end(), 0);
  const vit::Batch all = vit::take_batch(data, idx);
  const std::vector<int> sync_labels = engine.predict_batch(all.images);

  const int pixels = all.images.dim(1);
  std::vector<std::future<Prediction>> futs;
  for (int r = 0; r < data.size(); ++r) {
    std::vector<float> img(static_cast<std::size_t>(pixels));
    for (int c = 0; c < pixels; ++c) img[static_cast<std::size_t>(c)] = all.images.at(r, c);
    futs.push_back(engine.submit(std::move(img)));
  }
  for (int r = 0; r < data.size(); ++r) {
    const Prediction pred = futs[static_cast<std::size_t>(r)].get();
    EXPECT_EQ(pred.label, sync_labels[static_cast<std::size_t>(r)]) << "image " << r;
    EXPECT_EQ(pred.logits.size(), static_cast<std::size_t>(top.classes));
    EXPECT_GE(pred.queue_ms, 0.0);
  }

  const EngineStats st = engine.stats();
  EXPECT_EQ(st.images, static_cast<std::uint64_t>(data.size()));
  EXPECT_GE(st.batches, 1u);
  EXPECT_LE(st.max_batch_seen, opts.max_batch);
  EXPECT_GT(st.avg_batch(), 1.0);  // coalescing actually happened
}

TEST(InferenceEngine, MixedSizeBatchFailsOnlyTheOddRequest) {
  const vit::VitConfig top = tiny_topology();
  vit::VisionTransformer model(top, /*seed=*/24);
  const vit::ScInferenceConfig cfg = tiny_sc_config();

  EngineOptions opts;
  opts.threads = 1;
  opts.max_batch = 2;  // force the good and the bad request into one batch
  opts.max_delay = std::chrono::microseconds(500'000);
  InferenceEngine engine(model, cfg, opts);

  const int pixels = top.channels * top.image_size * top.image_size;
  auto good = engine.submit(std::vector<float>(static_cast<std::size_t>(pixels), 0.1f));
  auto bad = engine.submit(std::vector<float>(7, 0.1f));  // wrong size
  EXPECT_THROW(bad.get(), std::invalid_argument);
  const Prediction pred = good.get();
  EXPECT_GE(pred.label, 0);
  EXPECT_LT(pred.label, top.classes);

  // The dispatcher survived; the engine keeps serving.
  auto again = engine.submit(std::vector<float>(static_cast<std::size_t>(pixels), 0.2f));
  EXPECT_GE(again.get().label, 0);
  EXPECT_EQ(engine.stats().images, 2u);  // the rejected request is not counted
}
