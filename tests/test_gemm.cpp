// Blocked/tiled GEMM kernel subsystem (nn/gemm.h): blocked kernels vs the
// seed's reference loops across awkward shapes, packed-ternary vs dense
// frozen Linear::infer equivalence, run-to-run / across-thread-count
// determinism, and ASCEND_GEMM=reference bit-exactness vs the seed loops.

#include <gtest/gtest.h>

#include <array>
#include <cmath>
#include <cstring>
#include <thread>
#include <vector>

#include "nn/attention.h"
#include "nn/gemm.h"
#include "nn/module.h"
#include "nn/ops.h"
#include "nn/rng.h"
#include "runtime/thread_pool.h"

using namespace ascend;
using namespace ascend::nn;

namespace {

/// Restores the process-wide kernel backend on scope exit.
struct BackendGuard {
  gemm::Backend saved = gemm::backend();
  ~BackendGuard() { gemm::set_backend(saved); }
};

Tensor random_tensor(std::vector<int> shape, Rng& rng) {
  Tensor t(std::move(shape));
  rng.fill_normal(t, 0.0f, 1.0f);
  return t;
}

float max_abs_diff(const Tensor& a, const Tensor& b) {
  EXPECT_EQ(a.shape(), b.shape());
  float worst = 0.0f;
  for (std::size_t i = 0; i < a.size(); ++i) worst = std::max(worst, std::fabs(a[i] - b[i]));
  return worst;
}

void expect_bitwise_equal(const Tensor& a, const Tensor& b, const char* what) {
  ASSERT_EQ(a.shape(), b.shape()) << what;
  for (std::size_t i = 0; i < a.size(); ++i) ASSERT_EQ(a[i], b[i]) << what << " element " << i;
}

// m/k/n triples deliberately not multiples of the micro-tile: 1x1x1 up to
// 65x67x63, plus a k > 256 case that crosses the KC contraction block.
const std::vector<std::array<int, 3>> kAwkwardShapes = {
    {1, 1, 1},  {2, 3, 4},    {5, 7, 9},    {17, 1, 33},  {1, 64, 1},   {7, 300, 5},
    {33, 16, 48}, {64, 64, 64}, {65, 67, 63}, {96, 96, 96}, {13, 280, 31},
};

}  // namespace

// ---------------------------------------------------------------------------
// Blocked kernels vs reference loops
// ---------------------------------------------------------------------------

TEST(GemmBlocked, MatmulMatchesReferenceAcrossAwkwardShapes) {
  BackendGuard guard;
  Rng rng(3);
  for (const auto& [m, k, n] : kAwkwardShapes) {
    const Tensor a = random_tensor({m, k}, rng);
    const Tensor b = random_tensor({k, n}, rng);
    gemm::set_backend(gemm::Backend::kReference);
    const Tensor ref = matmul(a, b);
    gemm::set_backend(gemm::Backend::kBlocked);
    const Tensor got = matmul(a, b);
    // Long contractions (k > KC = 256 splits the k-block fold, and FMA
    // contraction differs between kernels) accumulate a little more rounding.
    EXPECT_LE(max_abs_diff(ref, got), k <= 128 ? 1e-5f : 1e-4f) << m << "x" << k << "x" << n;
  }
}

TEST(GemmBlocked, MatmulTnMatchesReferenceAcrossAwkwardShapes) {
  BackendGuard guard;
  Rng rng(4);
  for (const auto& [m, k, n] : kAwkwardShapes) {
    const Tensor a = random_tensor({k, m}, rng);  // stored transposed
    const Tensor b = random_tensor({k, n}, rng);
    gemm::set_backend(gemm::Backend::kReference);
    const Tensor ref = matmul_tn(a, b);
    gemm::set_backend(gemm::Backend::kBlocked);
    const Tensor got = matmul_tn(a, b);
    EXPECT_LE(max_abs_diff(ref, got), k <= 128 ? 1e-5f : 1e-4f) << m << "x" << k << "x" << n;
  }
}

TEST(GemmBlocked, MatmulNtMatchesReferenceAcrossAwkwardShapes) {
  BackendGuard guard;
  Rng rng(5);
  for (const auto& [m, k, n] : kAwkwardShapes) {
    const Tensor a = random_tensor({m, k}, rng);
    const Tensor b = random_tensor({n, k}, rng);  // B stored [n, k]
    gemm::set_backend(gemm::Backend::kReference);
    const Tensor ref = matmul_nt(a, b);
    gemm::set_backend(gemm::Backend::kBlocked);
    const Tensor got = matmul_nt(a, b);
    EXPECT_LE(max_abs_diff(ref, got), k <= 128 ? 1e-5f : 1e-4f) << m << "x" << k << "x" << n;
  }
}

TEST(GemmBlocked, AttentionInferMatchesReferenceBackend) {
  // Integration check for the strided pointer kernels: MSA::infer reads
  // Q/K/V panels straight out of the fused qkv projection.
  BackendGuard guard;
  Rng rng(6);
  MultiHeadSelfAttention msa(16, 2, rng);
  const int batch = 2, tokens = 5;
  const Tensor x = random_tensor({batch * tokens, 16}, rng);
  gemm::set_backend(gemm::Backend::kReference);
  const Tensor ref = msa.infer(x, batch, tokens);
  gemm::set_backend(gemm::Backend::kBlocked);
  const Tensor got = msa.infer(x, batch, tokens);
  EXPECT_LE(max_abs_diff(ref, got), 1e-5f);
}

// ---------------------------------------------------------------------------
// Micro-kernel tiers (base / avx2 / avx512 / avx512bf16)
// ---------------------------------------------------------------------------

namespace {

/// Restores the process-wide micro-kernel tier on scope exit.
struct KernelGuard {
  gemm::Kernel saved = gemm::kernel();  // resolved tier, never kAuto
  ~KernelGuard() { gemm::set_kernel(saved); }
};

}  // namespace

TEST(KernelTiers, NameAndQueryAgree) {
  KernelGuard guard;
  EXPECT_NE(gemm::kernel(), gemm::Kernel::kAuto);  // kernel() reports resolved
  EXPECT_TRUE(gemm::kernel_supported(gemm::Kernel::kAuto));
  EXPECT_TRUE(gemm::kernel_supported(gemm::Kernel::kBase));
  gemm::set_kernel(gemm::Kernel::kBase);
  EXPECT_EQ(gemm::kernel(), gemm::Kernel::kBase);
  EXPECT_STREQ(gemm::kernel_name(), "base");
  if (gemm::kernel_supported(gemm::Kernel::kAvx512)) {
    gemm::set_kernel(gemm::Kernel::kAvx512);
    EXPECT_STREQ(gemm::kernel_name(), "avx512");
  }
}

TEST(KernelTiers, Avx512BitIdenticalToAvx2) {
  // The determinism contract of the f32 FMA tiers: widening the vector adds
  // independent accumulator lanes but never reassociates a chain. Shapes keep
  // m >= 8 so both tiers route the blocked path (below its MR a tier falls
  // back to the shared seed-order loop, which is tier-independent anyway).
  if (!gemm::kernel_supported(gemm::Kernel::kAvx512))
    GTEST_SKIP() << "host lacks AVX-512F";
  KernelGuard guard;
  BackendGuard bguard;
  gemm::set_backend(gemm::Backend::kBlocked);
  Rng rng(19);
  for (const auto& [m, k, n] : {std::array<int, 3>{8, 64, 32},
                                {65, 67, 63},
                                {96, 96, 96},
                                {13, 280, 31},
                                {33, 16, 48}}) {
    const Tensor a = random_tensor({m, k}, rng);
    const Tensor b = random_tensor({k, n}, rng);
    const Tensor at = random_tensor({k, m}, rng);
    const Tensor bt = random_tensor({n, k}, rng);
    gemm::set_kernel(gemm::Kernel::kAvx2);
    const Tensor nn2 = matmul(a, b);
    const Tensor tn2 = matmul_tn(at, b);
    const Tensor nt2 = matmul_nt(a, bt);
    gemm::set_kernel(gemm::Kernel::kAvx512);
    expect_bitwise_equal(matmul(a, b), nn2, "avx512 vs avx2 nn");
    expect_bitwise_equal(matmul_tn(at, b), tn2, "avx512 vs avx2 tn");
    expect_bitwise_equal(matmul_nt(a, bt), nt2, "avx512 vs avx2 nt");
  }
}

TEST(KernelTiers, Avx512MatchesReferenceAcrossAwkwardShapes) {
  if (!gemm::kernel_supported(gemm::Kernel::kAvx512))
    GTEST_SKIP() << "host lacks AVX-512F";
  KernelGuard guard;
  BackendGuard bguard;
  gemm::set_kernel(gemm::Kernel::kAvx512);
  Rng rng(20);
  for (const auto& [m, k, n] : kAwkwardShapes) {
    const Tensor a = random_tensor({m, k}, rng);
    const Tensor b = random_tensor({k, n}, rng);
    gemm::set_backend(gemm::Backend::kReference);
    const Tensor ref = matmul(a, b);
    gemm::set_backend(gemm::Backend::kBlocked);
    const Tensor got = matmul(a, b);
    EXPECT_LE(max_abs_diff(ref, got), k <= 128 ? 1e-5f : 1e-4f) << m << "x" << k << "x" << n;
  }
}

TEST(KernelTiers, Bf16WithinTolerance) {
  // The opt-in tier rounds both operands to bf16 (8 mantissa bits) and
  // pair-sums, so agreement with f32 is approximate: error grows like
  // sqrt(k) * 2^-8 for unit-normal data.
  if (!gemm::kernel_supported(gemm::Kernel::kAvx512Bf16))
    GTEST_SKIP() << "host lacks AVX512-BF16";
  KernelGuard guard;
  BackendGuard bguard;
  gemm::set_backend(gemm::Backend::kBlocked);
  Rng rng(21);
  for (const auto& [m, k, n] :
       {std::array<int, 3>{8, 64, 32}, {65, 67, 63}, {13, 280, 31}, {96, 96, 96}}) {
    const Tensor a = random_tensor({m, k}, rng);
    const Tensor b = random_tensor({k, n}, rng);
    gemm::set_kernel(gemm::Kernel::kAvx512);
    const Tensor f32 = matmul(a, b);
    gemm::set_kernel(gemm::Kernel::kAvx512Bf16);
    const Tensor bf16 = matmul(a, b);
    EXPECT_LE(max_abs_diff(f32, bf16), 0.05f * std::sqrt(static_cast<float>(k)))
        << m << "x" << k << "x" << n;
    expect_bitwise_equal(matmul(a, b), bf16, "bf16 run-to-run");
  }
}

// ---------------------------------------------------------------------------
// ASCEND_GEMM=reference bit-exactness vs the seed loops
// ---------------------------------------------------------------------------

namespace {

// The seed's naive matmul, reimplemented verbatim (tests/test_gemm.cpp is the
// bit-exactness pin for the reference backend).
Tensor seed_matmul(const Tensor& a, const Tensor& b) {
  const int m = a.dim(0), k = a.dim(1), n = b.dim(1);
  Tensor c({m, n});
  const float* pa = a.data();
  const float* pb = b.data();
  float* pc = c.data();
  for (int i = 0; i < m; ++i) {
    float* crow = pc + static_cast<std::size_t>(i) * n;
    for (int kk = 0; kk < k; ++kk) {
      const float av = pa[static_cast<std::size_t>(i) * k + kk];
      if (av == 0.0f) continue;
      const float* brow = pb + static_cast<std::size_t>(kk) * n;
      for (int j = 0; j < n; ++j) crow[j] += av * brow[j];
    }
  }
  return c;
}

}  // namespace

TEST(GemmReference, BitExactWithSeedLoops) {
  BackendGuard guard;
  gemm::set_backend(gemm::Backend::kReference);
  Rng rng(7);
  for (const auto& [m, k, n] : kAwkwardShapes) {
    const Tensor a = random_tensor({m, k}, rng);
    const Tensor b = random_tensor({k, n}, rng);
    expect_bitwise_equal(matmul(a, b), seed_matmul(a, b), "reference matmul vs seed");
  }
}

// ---------------------------------------------------------------------------
// Determinism: run-to-run and across thread counts
// ---------------------------------------------------------------------------

TEST(GemmDeterminism, BlockedBitIdenticalRunToRun) {
  BackendGuard guard;
  gemm::set_backend(gemm::Backend::kBlocked);
  Rng rng(8);
  const Tensor a = random_tensor({65, 67}, rng);
  const Tensor b = random_tensor({67, 63}, rng);
  expect_bitwise_equal(matmul(a, b), matmul(a, b), "run-to-run");
  const Tensor at = random_tensor({67, 65}, rng);
  expect_bitwise_equal(matmul_tn(at, b), matmul_tn(at, b), "tn run-to-run");
  const Tensor bt = random_tensor({63, 67}, rng);
  expect_bitwise_equal(matmul_nt(a, bt), matmul_nt(a, bt), "nt run-to-run");
}

TEST(GemmDeterminism, BitIdenticalAcrossThreadCountsAndPools) {
  BackendGuard guard;
  gemm::set_backend(gemm::Backend::kBlocked);
  Rng rng(9);
  // Tall enough for several row bands (MC is at most 144 rows per band).
  const int m = 400, k = 96, n = 70;
  const Tensor a = random_tensor({m, k}, rng);
  const Tensor b = random_tensor({k, n}, rng);

  Tensor serial({m, n});
  gemm::gemm_nn(m, n, k, a.data(), k, b.data(), n, serial.data(), n);

  for (int threads : {1, 2, 3, 4}) {
    runtime::ThreadPool pool(threads);
    gemm::GemmOptions opts;
    opts.pool = &pool;
    Tensor c({m, n});
    gemm::gemm_nn(m, n, k, a.data(), k, b.data(), n, c.data(), n, opts);
    expect_bitwise_equal(c, serial, "pool-parallel vs serial");
  }
}

TEST(GemmDeterminism, ConcurrentPoolCallersAgree) {
  // Two caller threads sharing one pool (the TSan job drives this): results
  // must match the serial product bit-for-bit.
  BackendGuard guard;
  gemm::set_backend(gemm::Backend::kBlocked);
  Rng rng(10);
  const int m = 300, k = 64, n = 48;
  const Tensor a = random_tensor({m, k}, rng);
  const Tensor b = random_tensor({k, n}, rng);
  Tensor serial({m, n});
  gemm::gemm_nn(m, n, k, a.data(), k, b.data(), n, serial.data(), n);

  runtime::ThreadPool pool(3);
  std::vector<Tensor> results(4, Tensor({m, n}));
  std::vector<std::thread> callers;
  callers.reserve(results.size());
  for (auto& out : results)
    callers.emplace_back([&, po = &out] {
      gemm::GemmOptions opts;
      opts.pool = &pool;
      gemm::gemm_nn(m, n, k, a.data(), k, b.data(), n, po->data(), n, opts);
    });
  for (auto& t : callers) t.join();
  for (const auto& out : results) expect_bitwise_equal(out, serial, "concurrent caller");
}

// ---------------------------------------------------------------------------
// Packed-ternary serving path
// ---------------------------------------------------------------------------

namespace {

/// Dense control: per-call quantization through the quantizer's plain infer
/// (no snapshots involved), plus bias.
Tensor dense_linear_control(Linear& lin, const Tensor& x) {
  const Tensor xq = lin.input_quant().infer(x);
  const Tensor wq = lin.weight_quant().infer(lin.weight().value);
  Tensor y = matmul(xq, wq);
  for (int r = 0; r < y.dim(0); ++r)
    for (int c = 0; c < y.dim(1); ++c)
      y.at(r, c) += lin.bias().value[static_cast<std::size_t>(c)];
  return y;
}

}  // namespace

TEST(PackedTernary, LinearInferMatchesDenseFrozenTernaryActivations) {
  BackendGuard guard;
  gemm::set_backend(gemm::Backend::kBlocked);
  Rng rng(11);
  Linear lin(96, 80, rng);
  lin.set_weight_quant(QuantSpec::ternary());
  lin.set_input_quant(QuantSpec::ternary());
  Tensor x = random_tensor({5, 96}, rng);
  for (int c = 0; c < 96; ++c) x.at(2, c) = 0.0f;  // an all-zero row
  (void)lin.forward(x);  // latch the LSQ steps
  const Tensor packed = lin.infer(x);
  EXPECT_TRUE(lin.weight_quant().packed_frozen());
  const Tensor dense = dense_linear_control(lin, x);
  EXPECT_LE(max_abs_diff(packed, dense), 1e-5f);
}

TEST(PackedTernary, KernelMatchesDenseForFloatActivations) {
  // Full-precision activations exercise the sign-plane bit-iteration
  // fallback of the kernel itself. (Linear::infer never routes this case —
  // it serves dense blocked GEMM when the input quantizer is not ternary,
  // because the fallback loses to the blocked kernels; see module.cpp.)
  BackendGuard guard;
  gemm::set_backend(gemm::Backend::kBlocked);
  Rng rng(12);
  LsqQuantizer q(QuantSpec::ternary());
  Tensor w = random_tensor({70, 33}, rng);
  (void)q.forward(w);  // latch the step
  const PackedTernary& pt = q.frozen_packed_ternary(w);
  const Tensor x = random_tensor({4, 70}, rng);
  Tensor packed({4, 33});
  gemm::ternary_matmul(x.data(), 4, 70, pt, packed.data(), 33);
  const Tensor dense = matmul(x, q.infer(w));
  EXPECT_LE(max_abs_diff(packed, dense), 1e-5f);
}

TEST(PackedTernary, LinearServesDenseWhenActivationsNotTernary) {
  // Ternary weights + full-precision activations: the dense blocked path
  // serves (no packed snapshot is built), and matches per-call dense
  // requantization bit-exactly.
  BackendGuard guard;
  gemm::set_backend(gemm::Backend::kBlocked);
  Rng rng(18);
  Linear lin(48, 29, rng);
  lin.set_weight_quant(QuantSpec::ternary());
  const Tensor x = random_tensor({3, 48}, rng);
  (void)lin.forward(x);
  const Tensor served = lin.infer(x);
  EXPECT_FALSE(lin.weight_quant().packed_frozen());
  EXPECT_TRUE(lin.weight_quant().frozen());  // dense snapshot instead
  const Tensor dense = dense_linear_control(lin, x);
  expect_bitwise_equal(served, dense, "dense serving for non-ternary activations");
}

TEST(PackedTernary, DeterministicRunToRun) {
  BackendGuard guard;
  gemm::set_backend(gemm::Backend::kBlocked);
  Rng rng(13);
  Linear lin(128, 128, rng);
  lin.set_weight_quant(QuantSpec::ternary());
  lin.set_input_quant(QuantSpec::ternary());
  const Tensor x = random_tensor({3, 128}, rng);
  (void)lin.forward(x);
  expect_bitwise_equal(lin.infer(x), lin.infer(x), "packed run-to-run");
}

TEST(PackedTernary, PlanesMatchDenseQuantization) {
  BackendGuard guard;
  gemm::set_backend(gemm::Backend::kBlocked);
  Rng rng(14);
  LsqQuantizer q(QuantSpec::ternary());
  Tensor w = random_tensor({37, 21}, rng);
  (void)q.forward(w);  // latch the step
  const Tensor wq = q.infer(w);
  const PackedTernary& pt = q.frozen_packed_ternary(w);
  ASSERT_EQ(pt.rows, 37);
  ASSERT_EQ(pt.cols, 21);
  ASSERT_EQ(pt.plus.size(), 21u);
  for (int i = 0; i < pt.rows; ++i)
    for (int j = 0; j < pt.cols; ++j) {
      const float v = wq.at(i, j);
      EXPECT_EQ(pt.plus[static_cast<std::size_t>(j)].get(static_cast<std::size_t>(i)), v > 0.0f);
      EXPECT_EQ(pt.minus[static_cast<std::size_t>(j)].get(static_cast<std::size_t>(i)), v < 0.0f);
      if (v > 0.0f) {
        EXPECT_FLOAT_EQ(v, pt.step);
      }
    }
}

TEST(PackedTernary, ThawRules) {
  BackendGuard guard;
  gemm::set_backend(gemm::Backend::kBlocked);
  Rng rng(15);
  Linear lin(16, 12, rng);
  lin.set_weight_quant(QuantSpec::ternary());
  lin.set_input_quant(QuantSpec::ternary());
  const Tensor x = random_tensor({2, 16}, rng);
  (void)lin.forward(x);
  (void)lin.infer(x);  // freeze packed snapshot
  ASSERT_TRUE(lin.weight_quant().packed_frozen());

  // Training forward thaws.
  (void)lin.forward(x);
  EXPECT_FALSE(lin.weight_quant().packed_frozen());

  // reset_spec (the apply_precision path) thaws.
  (void)lin.infer(x);
  ASSERT_TRUE(lin.weight_quant().packed_frozen());
  lin.set_weight_quant(QuantSpec::ternary());
  EXPECT_FALSE(lin.weight_quant().packed_frozen());

  // Manual thaw + weight edit: the rebuilt snapshot must see the new weights.
  (void)lin.forward(x);  // re-latch the step under the new spec
  const Tensor before = lin.infer(x);
  for (std::size_t i = 0; i < lin.weight().value.size(); ++i)
    lin.weight().value[i] = -lin.weight().value[i];
  lin.thaw();
  const Tensor after = lin.infer(x);
  bool any_diff = false;
  for (std::size_t i = 0; i < after.size(); ++i) any_diff = any_diff || after[i] != before[i];
  EXPECT_TRUE(any_diff) << "thaw must rebuild the packed planes from the edited weights";
}

TEST(PackedTernary, ReferenceBackendServesDenseBitExactly) {
  // ASCEND_GEMM=reference disables the packed path: Linear::infer must be
  // bit-exact with the seed's dense frozen serving behaviour.
  BackendGuard guard;
  Rng rng(16);
  Linear lin(24, 18, rng);
  lin.set_weight_quant(QuantSpec::ternary());
  lin.set_input_quant(QuantSpec::ternary());
  const Tensor x = random_tensor({3, 24}, rng);
  (void)lin.forward(x);
  gemm::set_backend(gemm::Backend::kReference);
  const Tensor served = lin.infer(x);
  EXPECT_FALSE(lin.weight_quant().packed_frozen());
  const Tensor dense = dense_linear_control(lin, x);
  expect_bitwise_equal(served, dense, "reference backend dense serving");
}

TEST(PackedTernary, ThrowsOnNonTernarySpec) {
  Rng rng(17);
  LsqQuantizer q16(QuantSpec::from_bsl(16));
  const Tensor w = random_tensor({4, 4}, rng);
  EXPECT_THROW((void)q16.frozen_packed_ternary(w), std::logic_error);
  LsqQuantizer off;
  EXPECT_THROW((void)off.frozen_packed_ternary(w), std::logic_error);
  LsqQuantizer tern(QuantSpec::ternary());
  EXPECT_THROW((void)tern.frozen_packed_ternary(Tensor({4, 0})), std::invalid_argument);
  EXPECT_THROW((void)tern.frozen_packed_ternary(Tensor({4})), std::invalid_argument);
}
