// Unit + property tests for the iterative approximate softmax (Algorithm 1
// and its Fig. 5 SC circuit model).

#include <gtest/gtest.h>

#include <cmath>
#include <numeric>

#include "sc/softmax_iter.h"

using namespace ascend::sc;

TEST(SoftmaxExact, BasicProperties) {
  const auto y = softmax_exact({1.0, 2.0, 3.0});
  EXPECT_NEAR(y[0] + y[1] + y[2], 1.0, 1e-12);
  EXPECT_LT(y[0], y[1]);
  EXPECT_LT(y[1], y[2]);
  EXPECT_NEAR(y[2], std::exp(3.0) / (std::exp(1.0) + std::exp(2.0) + std::exp(3.0)), 1e-12);
}

TEST(SoftmaxIterRef, UniformInputIsFixedPoint) {
  // x = c * 1: softmax = 1/m and Algorithm 1 keeps y = 1/m exactly.
  const auto y = softmax_iterative_ref({2.0, 2.0, 2.0, 2.0}, 5);
  for (double v : y) EXPECT_NEAR(v, 0.25, 1e-12);
}

TEST(SoftmaxIterRef, ConvergesWithK) {
  const std::vector<double> x = {0.3, -1.2, 0.9, 2.0, -0.4, 0.0};
  const auto exact = softmax_exact(x);
  auto err = [&](int k) {
    const auto y = softmax_iterative_ref(x, k);
    double e = 0.0;
    for (std::size_t i = 0; i < x.size(); ++i) e += std::fabs(y[i] - exact[i]);
    return e / x.size();
  };
  EXPECT_GT(err(2), err(8));
  EXPECT_GT(err(8), err(64));
  EXPECT_LT(err(64), 5e-3);
}

TEST(SoftmaxIterRef, PreservesOrdering) {
  const std::vector<double> x = {0.5, -0.5, 1.5, 0.0};
  const auto y = softmax_iterative_ref(x, 3);
  EXPECT_GT(y[2], y[0]);
  EXPECT_GT(y[0], y[3]);
  EXPECT_GT(y[3], y[1]);
}

TEST(SoftmaxIterConfigTest, ValidatesSubsampleRates) {
  SoftmaxIterConfig cfg;  // defaults: m=64, Bx=4, By=8 -> m*Lz = 1024
  EXPECT_NO_THROW(cfg.validate());
  cfg.s1 = 3;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
  cfg.s1 = 32;
  cfg.s2 = 7;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
  cfg.s2 = 8;
  cfg.bx = 3;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
}

TEST(SoftmaxIterLayoutTest, MatchesHandComputation) {
  SoftmaxIterConfig cfg;  // m=64, k=3, Bx=4, By=8, s1=32, s2=8
  const SoftmaxIterLayout lay = softmax_iter_layout(cfg);
  EXPECT_EQ(lay.lz, 16);         // 4*8/2
  EXPECT_EQ(lay.lsum, 1024);     // 64*16
  EXPECT_EQ(lay.lsum_sub, 32);   // 1024/32
  EXPECT_EQ(lay.lw, 128);        // 8*32/2
  EXPECT_EQ(lay.lw_sub, 16);     // 128/8
  EXPECT_EQ(lay.lconcat, lay.la + lay.lb + lay.lc);
  EXPECT_GT(lay.la, 0);
}

namespace {

SoftmaxIterConfig small_cfg() {
  SoftmaxIterConfig cfg;
  cfg.m = 8;
  cfg.k = 3;
  cfg.bx = 4;
  cfg.by = 8;
  cfg.s1 = 4;
  cfg.s2 = 4;
  cfg.alpha_x = 1.0;
  cfg.alpha_y = 1.0 / 8;
  cfg.align_expand = 4;
  return cfg;
}

}  // namespace

TEST(SoftmaxIterSc, BitLevelMatchesCountLevel) {
  // The headline fidelity claim: the fast count-level emulation and the
  // bit-level ThermStream/BSN emulation are the same circuit.
  const SoftmaxIterConfig cfg = small_cfg();
  const auto rows = sample_attention_logits(cfg.m, 12, 321);
  for (const auto& row : rows) {
    const auto a = softmax_iterative_sc(row, cfg);
    const auto b = softmax_iterative_sc_bits(row, cfg);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) EXPECT_DOUBLE_EQ(a[i], b[i]);
  }
}

TEST(SoftmaxIterSc, OutputsOnTheYGrid) {
  const SoftmaxIterConfig cfg = small_cfg();
  const auto rows = sample_attention_logits(cfg.m, 6, 99);
  for (const auto& row : rows)
    for (double v : softmax_iterative_sc(row, cfg)) {
      const double level = v / cfg.alpha_y + cfg.by / 2.0;
      EXPECT_NEAR(level, std::round(level), 1e-9);
      EXPECT_GE(level, -1e-9);
      EXPECT_LE(level, cfg.by + 1e-9);
    }
}

TEST(SoftmaxIterSc, TracksExactSoftmaxReasonably) {
  // Fine grids and mild sub-sampling: the circuit must track the float
  // Algorithm 1 on the *encoded* inputs (the paper's MAE protocol measures
  // circuit outputs against references for the SC-encoded test vectors) to
  // within a few y grid steps.
  SoftmaxIterConfig cfg = small_cfg();
  cfg.bx = 8;
  cfg.alpha_x = 0.4;
  cfg.by = 32;
  cfg.alpha_y = 2.2 / 32;  // grid covering [0, 1.1]
  cfg.s1 = 2;
  cfg.s2 = 2;
  cfg.k = 4;
  const std::vector<double> x = {0.4, -0.6, 1.2, 0.1, -1.0, 0.7, 0.0, -0.3};
  std::vector<double> xq(x.size());
  for (std::size_t i = 0; i < x.size(); ++i)
    xq[i] = ThermValue::encode(x[i], cfg.bx, cfg.alpha_x).value();
  const auto ref = softmax_iterative_ref(xq, cfg.k);
  const auto got = softmax_iterative_sc(x, cfg);
  for (std::size_t i = 0; i < x.size(); ++i)
    EXPECT_NEAR(got[i], ref[i], 3.0 * cfg.alpha_y) << i;
}

TEST(SoftmaxIterSc, MaeImprovesWithBy) {
  // The Table IV trend: more y precision -> lower MAE. As in the paper's DSE,
  // the designer picks the best scaling factor per precision, so each By is
  // scored with its MAE-optimal alpha_y from a small candidate set.
  auto run = [](int by) {
    double best = 1e9;
    for (double ay : {0.5 / 16, 1.0 / 16, 1.5 / 16, 1.5 / by, 2.2 / by}) {
      SoftmaxIterConfig cfg;
      cfg.m = 16;
      cfg.k = 3;
      cfg.bx = 8;
      cfg.by = by;
      cfg.s1 = 8;
      cfg.s2 = 4;
      cfg.alpha_x = 0.75;
      cfg.alpha_y = ay;
      best = std::min(best, softmax_sc_mae(cfg, 48, 1234));
    }
    return best;
  };
  const double m4 = run(4), m8 = run(8), m16 = run(16);
  EXPECT_GT(m4, m8);
  EXPECT_GT(m8, m16);
}

TEST(SoftmaxIterSc, SubsamplingCostsAccuracy) {
  // Increasing s1 (coarser sum(z)) should not improve MAE.
  auto run = [](int s1) {
    SoftmaxIterConfig cfg;
    cfg.m = 16;
    cfg.k = 3;
    cfg.bx = 4;
    cfg.by = 16;
    cfg.s1 = s1;
    cfg.s2 = 2;
    cfg.alpha_x = 1.0;
    cfg.alpha_y = 1.5 / 16;
    return softmax_sc_mae(cfg, 48, 777);
  };
  EXPECT_LE(run(2), run(64) + 5e-3);
}

TEST(SoftmaxIterSc, InputSizeChecked) {
  const SoftmaxIterConfig cfg = small_cfg();
  EXPECT_THROW(softmax_iterative_sc({1.0, 2.0}, cfg), std::invalid_argument);
}

TEST(SampleAttentionLogits, ShapeAndDeterminism) {
  const auto a = sample_attention_logits(16, 5, 42);
  const auto b = sample_attention_logits(16, 5, 42);
  ASSERT_EQ(a.size(), 5u);
  ASSERT_EQ(a[0].size(), 16u);
  EXPECT_EQ(a[3], b[3]);
  const auto c = sample_attention_logits(16, 5, 43);
  EXPECT_NE(a[0], c[0]);
}
