// Concurrency tests for the re-entrant const inference path: N-thread
// VisionTransformer::infer must be bit-exact with the serial eval-mode
// forward, and concurrent engine submit() streams must agree with the
// synchronous predict_batch path. Also covers batcher backpressure.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <numeric>
#include <thread>
#include <vector>

#include "nn/gemm.h"
#include "nn/module.h"
#include "nn/rng.h"
#include "runtime/batcher.h"
#include "runtime/engine.h"
#include "runtime/registry.h"
#include "runtime/thread_pool.h"
#include "serialize/model_io.h"
#include "vit/dataset.h"
#include "vit/model.h"
#include "vit/servable.h"

using namespace ascend;
using namespace ascend::runtime;

namespace {

vit::VitConfig tiny_topology() {
  vit::VitConfig cfg;
  cfg.image_size = 16;
  cfg.patch_size = 8;  // 4 tokens
  cfg.dim = 16;
  cfg.layers = 2;
  cfg.heads = 2;
  cfg.mlp_ratio = 2;
  cfg.classes = 4;
  return cfg;
}

vit::ScInferenceConfig tiny_sc_config() {
  vit::ScInferenceConfig cfg;
  cfg.use_sc_softmax = true;
  cfg.use_sc_gelu = true;
  cfg.gelu_bsl = 8;
  cfg.gelu_range = 6.0;
  return cfg;
}

void expect_logits_equal(const nn::Tensor& got, const nn::Tensor& want) {
  ASSERT_EQ(got.shape(), want.shape());
  for (std::size_t i = 0; i < want.size(); ++i) ASSERT_EQ(got[i], want[i]) << "logit " << i;
}

}  // namespace

// ---------------------------------------------------------------------------
// VisionTransformer::infer
// ---------------------------------------------------------------------------

TEST(VitInfer, BitExactWithSerialEvalForward) {
  const vit::VitConfig top = tiny_topology();
  vit::VisionTransformer model(top, /*seed=*/41);
  model.apply_precision(vit::PrecisionSpec::w2a2r16());
  const vit::Dataset data = vit::make_synthetic_vision(12, top.classes, 51, top.image_size);

  std::vector<int> idx(static_cast<std::size_t>(data.size()));
  std::iota(idx.begin(), idx.end(), 0);
  const vit::Batch batch = vit::take_batch(data, idx);

  // The eval-mode training forward initialises the LSQ steps and is the
  // bit-exactness reference.
  const nn::Tensor ref = model.forward(batch.images, /*training=*/false);
  const vit::VisionTransformer& cmodel = model;
  expect_logits_equal(cmodel.infer(batch.images), ref);
}

TEST(VitInfer, ConcurrentCallsBitExactWithSerialForward) {
  const vit::VitConfig top = tiny_topology();
  vit::VisionTransformer model(top, /*seed=*/42);
  model.apply_precision(vit::PrecisionSpec::w2a2r16());
  model.set_softmax_kind(nn::SoftmaxKind::kApprox);  // exercise ApproxSoftmax::infer too
  const vit::Dataset data = vit::make_synthetic_vision(24, top.classes, 52, top.image_size);

  // Per-thread disjoint inputs plus one shared input that every thread runs.
  constexpr int kThreads = 8;
  const int per_thread = data.size() / kThreads;
  std::vector<nn::Tensor> inputs(kThreads);
  std::vector<nn::Tensor> refs(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    std::vector<int> idx(static_cast<std::size_t>(per_thread));
    std::iota(idx.begin(), idx.end(), t * per_thread);
    inputs[static_cast<std::size_t>(t)] = vit::take_batch(data, idx).images;
    refs[static_cast<std::size_t>(t)] =
        model.forward(inputs[static_cast<std::size_t>(t)], /*training=*/false);
  }

  const vit::VisionTransformer& cmodel = model;
  std::atomic<int> mismatches{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int rep = 0; rep < 3; ++rep) {
        const nn::Tensor got = cmodel.infer(inputs[static_cast<std::size_t>(t)]);
        const nn::Tensor& want = refs[static_cast<std::size_t>(t)];
        if (got.shape() != want.shape()) {
          mismatches.fetch_add(1);
          continue;
        }
        for (std::size_t i = 0; i < want.size(); ++i)
          if (got[i] != want[i]) {
            mismatches.fetch_add(1);
            break;
          }
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(mismatches.load(), 0);

  // Member state was untouched: the training forward still reproduces refs.
  expect_logits_equal(model.forward(inputs[0], /*training=*/false), refs[0]);
}

TEST(VitInfer, LeavesNoFeatureTaps) {
  const vit::VitConfig top = tiny_topology();
  vit::VisionTransformer model(top, /*seed=*/43);
  const vit::Dataset data = vit::make_synthetic_vision(4, top.classes, 53, top.image_size);
  std::vector<int> idx(static_cast<std::size_t>(data.size()));
  std::iota(idx.begin(), idx.end(), 0);
  const vit::Batch batch = vit::take_batch(data, idx);

  (void)model.forward(batch.images, /*training=*/false);
  const std::size_t taps = model.block_outputs().size();
  (void)static_cast<const vit::VisionTransformer&>(model).infer(batch.images);
  EXPECT_EQ(model.block_outputs().size(), taps);  // infer never rewrites the KD taps
}

// ---------------------------------------------------------------------------
// InferenceEngine concurrency
// ---------------------------------------------------------------------------

TEST(EngineConcurrency, ConcurrentSubmitStreamsMatchPredictBatch) {
  const vit::VitConfig top = tiny_topology();
  vit::VisionTransformer model(top, /*seed=*/44);
  const vit::Dataset data = vit::make_synthetic_vision(32, top.classes, 54, top.image_size);
  const vit::ScInferenceConfig cfg = tiny_sc_config();

  EngineOptions opts;
  opts.threads = 2;
  opts.max_batch = 4;
  opts.max_delay = std::chrono::microseconds(2000);
  opts.concurrent_forwards = 3;
  InferenceEngine engine(model, cfg, opts);

  std::vector<int> idx(static_cast<std::size_t>(data.size()));
  std::iota(idx.begin(), idx.end(), 0);
  const vit::Batch all = vit::take_batch(data, idx);
  const std::vector<int> sync_labels = engine.predict_batch(all.images);
  const int pixels = all.images.dim(1);

  // Several client threads each stream a disjoint slice of the dataset.
  constexpr int kClients = 4;
  const int per_client = data.size() / kClients;
  std::vector<std::vector<int>> got(kClients);
  std::vector<std::thread> clients;
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      for (int i = 0; i < per_client; ++i) {
        const int r = c * per_client + i;
        std::vector<float> img(static_cast<std::size_t>(pixels));
        for (int p = 0; p < pixels; ++p) img[static_cast<std::size_t>(p)] = all.images.at(r, p);
        got[static_cast<std::size_t>(c)].push_back(engine.submit(std::move(img)).get().label);
      }
    });
  }
  for (auto& th : clients) th.join();

  for (int c = 0; c < kClients; ++c)
    for (int i = 0; i < per_client; ++i)
      EXPECT_EQ(got[static_cast<std::size_t>(c)][static_cast<std::size_t>(i)],
                sync_labels[static_cast<std::size_t>(c * per_client + i)])
          << "client " << c << " image " << i;

  const EngineStats st = engine.stats();
  EXPECT_EQ(st.images, static_cast<std::uint64_t>(kClients * per_client));
  EXPECT_GE(st.max_in_flight, 1);
  EXPECT_LE(st.max_in_flight, opts.concurrent_forwards);
}

TEST(EngineConcurrency, ConcurrentPredictBatchCallersAgree) {
  const vit::VitConfig top = tiny_topology();
  vit::VisionTransformer model(top, /*seed=*/45);
  const vit::Dataset data = vit::make_synthetic_vision(16, top.classes, 55, top.image_size);
  const vit::ScInferenceConfig cfg = tiny_sc_config();

  EngineOptions opts;
  opts.threads = 2;
  InferenceEngine engine(model, cfg, opts);

  std::vector<int> idx(static_cast<std::size_t>(data.size()));
  std::iota(idx.begin(), idx.end(), 0);
  const vit::Batch all = vit::take_batch(data, idx);
  const std::vector<int> ref = engine.predict_batch(all.images);

  std::atomic<int> mismatches{0};
  std::vector<std::thread> callers;
  for (int t = 0; t < 4; ++t) {
    callers.emplace_back([&] {
      for (int rep = 0; rep < 2; ++rep)
        if (engine.predict_batch(all.images) != ref) mismatches.fetch_add(1);
    });
  }
  for (auto& th : callers) th.join();
  EXPECT_EQ(mismatches.load(), 0);
}

// ---------------------------------------------------------------------------
// Registry hot-swap and multi-variant serving under concurrency (the TSan CI
// job drives these).
// ---------------------------------------------------------------------------

TEST(RegistryConcurrency, HotSwapMidTrafficIsBitExactWithQuiescedServing) {
  const vit::VitConfig top = tiny_topology();
  vit::VisionTransformer model(top, /*seed=*/47);
  model.apply_precision(vit::PrecisionSpec::w2a2r16());
  const vit::Dataset data = vit::make_synthetic_vision(24, top.classes, 56, top.image_size);
  std::vector<int> idx(static_cast<std::size_t>(data.size()));
  std::iota(idx.begin(), idx.end(), 0);
  const vit::Batch all = vit::take_batch(data, idx);
  (void)model.forward(all.images, /*training=*/false);  // latch the LSQ steps

  auto reg = std::make_shared<ModelRegistry>();
  reg->publish(vit::make_packed_ternary_servable(model, "m"));
  EngineOptions opts;
  opts.threads = 2;
  opts.max_batch = 4;
  opts.max_delay = std::chrono::microseconds(1000);
  opts.concurrent_forwards = 2;
  InferenceEngine engine(reg, opts);

  // Quiesced reference: no swaps in flight.
  const std::vector<int> ref = engine.predict_batch(all.images);
  const int pixels = all.images.dim(1);

  // Client threads stream the dataset while the main thread keeps
  // hot-swapping freshly cloned (re-frozen) servables of the same weights.
  constexpr int kClients = 3;
  const int per_client = data.size() / kClients;
  std::atomic<int> mismatches{0};
  std::vector<std::thread> clients;
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      for (int rep = 0; rep < 3; ++rep)
        for (int i = 0; i < per_client; ++i) {
          const int r = c * per_client + i;
          std::vector<float> img(static_cast<std::size_t>(pixels));
          for (int p = 0; p < pixels; ++p) img[static_cast<std::size_t>(p)] = all.images.at(r, p);
          const Prediction pred = engine.submit(std::move(img)).get();
          if (pred.label != ref[static_cast<std::size_t>(r)]) mismatches.fetch_add(1);
        }
    });
  }
  for (int swap = 0; swap < 8; ++swap) {
    reg->publish(vit::make_packed_ternary_servable(model, "m"));
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  for (auto& th : clients) th.join();
  EXPECT_EQ(mismatches.load(), 0);
  EXPECT_EQ(reg->generation("m"), 9u);  // 1 initial + 8 swaps
  // Post-swap sync path still matches the quiesced reference.
  EXPECT_EQ(engine.predict_batch(all.images), ref);
}

TEST(RegistryConcurrency, HotSwapToFreshMmapCheckpointMidTrafficIsBitExact) {
  // Same shape as HotSwapMidTrafficIsBitExactWithQuiescedServing, but every
  // swap cold-starts a NEW read-only mapping of the checkpoint file
  // (register_from_file): in-flight forwards keep the OLD mapping alive
  // through the servable's retained MmapCheckpoint until their snapshot
  // drops, so serving stays bit-exact while mappings churn underneath.
  const vit::VitConfig top = tiny_topology();
  vit::VisionTransformer model(top, /*seed=*/49);
  model.apply_precision(vit::PrecisionSpec::w2a2r16());
  const vit::Dataset data = vit::make_synthetic_vision(24, top.classes, 58, top.image_size);
  std::vector<int> idx(static_cast<std::size_t>(data.size()));
  std::iota(idx.begin(), idx.end(), 0);
  const vit::Batch all = vit::take_batch(data, idx);
  (void)model.forward(all.images, /*training=*/false);  // latch the LSQ steps

  const std::string path = testing::TempDir() + "hotswap.ckpt";
  model.save(path);

  auto reg = std::make_shared<ModelRegistry>();
  reg->register_from_file("m", path, VariantKind::kPackedTernary);
  EngineOptions opts;
  opts.threads = 2;
  opts.max_batch = 4;
  opts.max_delay = std::chrono::microseconds(1000);
  opts.concurrent_forwards = 2;
  InferenceEngine engine(reg, opts);

  const std::vector<int> ref = engine.predict_batch(all.images);
  const int pixels = all.images.dim(1);

  constexpr int kClients = 3;
  const int per_client = data.size() / kClients;
  std::atomic<int> mismatches{0};
  std::vector<std::thread> clients;
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      for (int rep = 0; rep < 3; ++rep)
        for (int i = 0; i < per_client; ++i) {
          const int r = c * per_client + i;
          std::vector<float> img(static_cast<std::size_t>(pixels));
          for (int p = 0; p < pixels; ++p) img[static_cast<std::size_t>(p)] = all.images.at(r, p);
          const Prediction pred = engine.submit(std::move(img)).get();
          if (pred.label != ref[static_cast<std::size_t>(r)]) mismatches.fetch_add(1);
        }
    });
  }
  for (int swap = 0; swap < 8; ++swap) {
    reg->register_from_file("m", path, VariantKind::kPackedTernary);
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  for (auto& th : clients) th.join();
  EXPECT_EQ(mismatches.load(), 0);
  EXPECT_EQ(reg->generation("m"), 9u);  // 1 cold start + 8 swaps
  EXPECT_EQ(engine.predict_batch(all.images), ref);
}

TEST(RegistryConcurrency, ConcurrentMultiVariantSubmitsMatchPerVariantReferences) {
  const vit::VitConfig top = tiny_topology();
  vit::VisionTransformer model(top, /*seed=*/48);
  model.apply_precision(vit::PrecisionSpec::w2a2r16());
  const vit::Dataset data = vit::make_synthetic_vision(16, top.classes, 57, top.image_size);
  std::vector<int> idx(static_cast<std::size_t>(data.size()));
  std::iota(idx.begin(), idx.end(), 0);
  const vit::Batch all = vit::take_batch(data, idx);
  (void)model.forward(all.images, /*training=*/false);

  auto reg = std::make_shared<ModelRegistry>();
  reg->publish(vit::make_packed_ternary_servable(model, "packed"));
  vit::ScServableOptions sopts;
  sopts.threads = 2;
  reg->publish(vit::make_sc_servable(model, tiny_sc_config(), sopts, "sc-lut"));
  EngineOptions opts;
  opts.threads = 2;
  opts.max_batch = 4;
  opts.max_delay = std::chrono::microseconds(1000);
  opts.concurrent_forwards = 2;
  opts.default_variant = "packed";
  InferenceEngine engine(reg, opts);

  const std::vector<int> ref_packed = engine.predict_batch(all.images, "packed");
  const std::vector<int> ref_sc = engine.predict_batch(all.images, "sc-lut");
  const int pixels = all.images.dim(1);

  // Interleaved mixed-priority streams against both variants at once.
  constexpr int kClients = 4;
  std::atomic<int> mismatches{0};
  std::vector<std::thread> clients;
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      const bool use_sc = (c % 2) == 1;
      RequestOptions ropts;
      ropts.variant = use_sc ? "sc-lut" : "packed";
      ropts.priority = (c % 3 == 0) ? Priority::kInteractive : Priority::kBatch;
      const std::vector<int>& ref = use_sc ? ref_sc : ref_packed;
      for (int r = 0; r < data.size(); ++r) {
        std::vector<float> img(static_cast<std::size_t>(pixels));
        for (int p = 0; p < pixels; ++p) img[static_cast<std::size_t>(p)] = all.images.at(r, p);
        const Prediction pred = engine.submit(std::move(img), ropts).get();
        if (pred.label != ref[static_cast<std::size_t>(r)]) mismatches.fetch_add(1);
        if (pred.variant != ropts.variant) mismatches.fetch_add(1);
      }
    });
  }
  for (auto& th : clients) th.join();
  EXPECT_EQ(mismatches.load(), 0);

  const EngineStats st = engine.stats();
  EXPECT_EQ(st.images, static_cast<std::uint64_t>(kClients * data.size()));
  EXPECT_EQ(st.priority(Priority::kInteractive).served +
                st.priority(Priority::kBatch).served,
            st.images);
}

// ---------------------------------------------------------------------------
// Batcher backpressure
// ---------------------------------------------------------------------------

TEST(BatcherBackpressure, RejectPolicyFailsFastOnFullQueue) {
  Batcher b(8, std::chrono::microseconds(1'000'000), /*max_pending=*/2, OverflowPolicy::kReject);
  auto f1 = b.enqueue({1.0f});
  auto f2 = b.enqueue({2.0f});
  EXPECT_THROW(b.enqueue({3.0f}), QueueFullError);
  EXPECT_EQ(b.pending(), 2u);
  // Draining makes room again.
  b.close();
  EXPECT_EQ(b.next_batch().size(), 2u);
}

TEST(BatcherBackpressure, BlockPolicyWaitsForSpace) {
  Batcher b(1, std::chrono::microseconds(0), /*max_pending=*/1, OverflowPolicy::kBlock);
  auto f1 = b.enqueue({1.0f});
  std::atomic<bool> second_enqueued{false};
  std::thread producer([&] {
    auto f2 = b.enqueue({2.0f});  // blocks until the dispatcher drains a batch
    second_enqueued.store(true);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_FALSE(second_enqueued.load());  // still parked on the full queue
  EXPECT_EQ(b.next_batch().size(), 1u);  // make room
  producer.join();
  EXPECT_TRUE(second_enqueued.load());
  EXPECT_EQ(b.pending(), 1u);
  b.close();
  EXPECT_EQ(b.next_batch().size(), 1u);
}

TEST(BatcherBackpressure, CloseWakesBlockedProducers) {
  Batcher b(4, std::chrono::microseconds(1'000'000), /*max_pending=*/1, OverflowPolicy::kBlock);
  auto f1 = b.enqueue({1.0f});
  std::atomic<bool> threw{false};
  std::thread producer([&] {
    try {
      (void)b.enqueue({2.0f});
    } catch (const std::runtime_error&) {
      threw.store(true);
    }
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  b.close();
  producer.join();
  EXPECT_TRUE(threw.load());
}

TEST(BatcherBackpressure, UnboundedQueueIgnoresPolicy) {
  Batcher b(2, std::chrono::microseconds(1000));  // max_pending = 0
  std::vector<std::future<Prediction>> futs;
  for (int i = 0; i < 64; ++i) futs.push_back(b.enqueue({1.0f}));
  EXPECT_EQ(b.pending(), 64u);
  b.close();
}

// ---------------------------------------------------------------------------
// Shutdown: queued requests fail promptly and typed, never hang or vanish.
// ---------------------------------------------------------------------------

TEST(BatcherBackpressure, CloseNowFailsQueuedRequestsWithTypedError) {
  Batcher b(4, std::chrono::microseconds(1'000'000));
  auto f1 = b.enqueue({1.0f});
  auto f2 = b.enqueue({2.0f});
  b.close_now();
  EXPECT_THROW(f1.get(), EngineShutdownError);
  EXPECT_THROW(f2.get(), EngineShutdownError);
  EXPECT_THROW((void)b.enqueue({3.0f}), EngineShutdownError);
  EXPECT_TRUE(b.next_batch().empty()) << "close_now leaves nothing to drain";
}

namespace {

/// Slow single-purpose servable: requests pile up in the queue behind it so
/// engine destruction finds real work still queued.
class SlowServable final : public Servable {
 public:
  SlowServable(std::string id, std::chrono::milliseconds delay)
      : id_(std::move(id)), delay_(delay) {}
  nn::Tensor infer(const nn::Tensor& batch) const override {
    std::this_thread::sleep_for(delay_);
    nn::Tensor logits({batch.dim(0), 2});
    for (int r = 0; r < batch.dim(0); ++r) logits.at(r, 0) = 1.0f;
    return logits;
  }
  int input_dim() const override { return 4; }
  int output_dim() const override { return 2; }
  const std::string& variant_id() const override { return id_; }

 private:
  std::string id_;
  std::chrono::milliseconds delay_;
};

}  // namespace

TEST(EngineShutdown, DestructionFailsQueuedRequestsPromptlyWithTypedError) {
  auto registry = std::make_shared<ModelRegistry>();
  registry->publish(
      std::make_shared<SlowServable>("slow", std::chrono::milliseconds(100)));
  EngineOptions opts;
  opts.max_batch = 1;  // one request per forward: the rest stays queued
  opts.max_delay = std::chrono::microseconds(100);
  opts.concurrent_forwards = 1;
  InferenceEngine* engine = new InferenceEngine(registry, opts);
  std::vector<std::future<Prediction>> futs;
  for (int i = 0; i < 8; ++i) futs.push_back(engine->submit(std::vector<float>(4, 0.5f)));
  delete engine;  // most requests are still queued behind the slow forward

  // Every future must already be resolved when the destructor returns —
  // in-flight work served, queued work failed typed, nothing left hanging.
  int served = 0, shut_down = 0;
  for (auto& f : futs) {
    ASSERT_EQ(f.wait_for(std::chrono::seconds(0)), std::future_status::ready)
        << "destruction left a request unresolved";
    try {
      EXPECT_EQ(f.get().label, 0);
      ++served;
    } catch (const EngineShutdownError&) {
      ++shut_down;
    }
  }
  EXPECT_EQ(served + shut_down, 8);
  EXPECT_GT(shut_down, 0) << "queued requests should fail fast, not be served late";
}

TEST(EngineBackpressure, RejectPolicySurfacesThroughSubmit) {
  const vit::VitConfig top = tiny_topology();
  vit::VisionTransformer model(top, /*seed=*/46);
  const vit::ScInferenceConfig cfg = tiny_sc_config();

  EngineOptions opts;
  opts.threads = 1;
  opts.max_batch = 2;
  opts.max_delay = std::chrono::microseconds(50'000);
  opts.concurrent_forwards = 1;
  opts.max_pending = 1;
  opts.overflow = OverflowPolicy::kReject;
  InferenceEngine engine(model, cfg, opts);

  const int pixels = top.channels * top.image_size * top.image_size;
  // Flood faster than one forward can drain; at least one submit must be
  // rejected, and every accepted request must still resolve.
  std::vector<std::future<Prediction>> accepted;
  int rejected = 0;
  for (int i = 0; i < 64; ++i) {
    try {
      accepted.push_back(engine.submit(std::vector<float>(static_cast<std::size_t>(pixels), 0.1f)));
    } catch (const QueueFullError&) {
      ++rejected;
    }
  }
  EXPECT_GT(rejected, 0);
  ASSERT_FALSE(accepted.empty());
  for (auto& f : accepted) EXPECT_GE(f.get().label, 0);
}

// ---------------------------------------------------------------------------
// Frozen-snapshot double-checked builds and pool-parallel GEMM under threads
// (the TSan CI job drives these).
// ---------------------------------------------------------------------------

TEST(SnapshotConcurrency, ConcurrentBatchNormFirstInferAgrees) {
  nn::BatchNorm bn(8);
  nn::Rng rng(33);
  nn::Tensor xt({16, 8});
  rng.fill_normal(xt, 0.2f, 1.1f);
  (void)bn.forward(xt, /*training=*/true);

  nn::Tensor x({6, 8});
  rng.fill_normal(x, 0, 1);
  // All threads race the first snapshot build (double-checked under the
  // internal mutex); every result must be identical.
  constexpr int kThreads = 8;
  std::vector<nn::Tensor> results(kThreads);
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  const nn::BatchNorm& cbn = bn;
  for (int t = 0; t < kThreads; ++t)
    threads.emplace_back([&, t] { results[static_cast<std::size_t>(t)] = cbn.infer(x); });
  for (auto& t : threads) t.join();
  EXPECT_TRUE(bn.frozen());
  for (int t = 1; t < kThreads; ++t)
    for (std::size_t i = 0; i < results[0].size(); ++i)
      ASSERT_EQ(results[static_cast<std::size_t>(t)][i], results[0][i]) << "thread " << t;
}

TEST(SnapshotConcurrency, ConcurrentPackedTernaryFirstInferAgrees) {
  nn::Rng rng(34);
  nn::Linear lin(32, 24, rng);
  lin.set_weight_quant(nn::QuantSpec::ternary());
  lin.set_input_quant(nn::QuantSpec::ternary());
  nn::Tensor x({4, 32});
  rng.fill_normal(x, 0, 1);
  (void)lin.forward(x);  // latch steps; thaws any snapshot

  constexpr int kThreads = 8;
  std::vector<nn::Tensor> results(kThreads);
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  const nn::Linear& clin = lin;
  for (int t = 0; t < kThreads; ++t)
    threads.emplace_back([&, t] { results[static_cast<std::size_t>(t)] = clin.infer(x); });
  for (auto& t : threads) t.join();
  for (int t = 1; t < kThreads; ++t)
    for (std::size_t i = 0; i < results[0].size(); ++i)
      ASSERT_EQ(results[static_cast<std::size_t>(t)][i], results[0][i]) << "thread " << t;
}

TEST(GemmConcurrency, PoolParallelCallersFromManyThreads) {
  // Caller threads sharing one pool for row-band-parallel GEMM: TSan probes
  // the pool handoff, and every caller must reproduce the serial product.
  nn::Rng rng(35);
  const int m = 320, k = 48, n = 40;
  nn::Tensor a({m, k}), b({k, n});
  rng.fill_normal(a, 0, 1);
  rng.fill_normal(b, 0, 1);
  nn::Tensor serial({m, n});
  nn::gemm::gemm_nn(m, n, k, a.data(), k, b.data(), n, serial.data(), n);

  runtime::ThreadPool pool(3);
  constexpr int kCallers = 4;
  std::vector<nn::Tensor> results(kCallers, nn::Tensor({m, n}));
  std::vector<std::thread> callers;
  callers.reserve(kCallers);
  for (int t = 0; t < kCallers; ++t)
    callers.emplace_back([&, t] {
      nn::gemm::GemmOptions opts;
      opts.pool = &pool;
      nn::gemm::gemm_nn(m, n, k, a.data(), k, b.data(), n,
                        results[static_cast<std::size_t>(t)].data(), n, opts);
    });
  for (auto& t : callers) t.join();
  for (int t = 0; t < kCallers; ++t)
    for (std::size_t i = 0; i < serial.size(); ++i)
      ASSERT_EQ(results[static_cast<std::size_t>(t)][i], serial[i]) << "caller " << t;
}
