// Unit tests for classic stochastic streams and their gate-level arithmetic.

#include <gtest/gtest.h>

#include <cmath>

#include "sc/stoch_arith.h"

using namespace ascend::sc;

TEST(StochStream, UnipolarEncodeDecode) {
  VdcSource src(14, 0);
  const StochStream s = StochStream::encode(0.3, 1 << 14, StochFormat::kUnipolar, 1.0, src);
  EXPECT_NEAR(s.value(), 0.3, 1e-3);
  EXPECT_NEAR(s.probability(), 0.3, 1e-3);
}

TEST(StochStream, BipolarEncodeDecode) {
  VdcSource src(14, 0);
  const StochStream s = StochStream::encode(-0.4, 1 << 14, StochFormat::kBipolar, 1.0, src);
  EXPECT_NEAR(s.value(), -0.4, 2e-3);
}

TEST(StochStream, ScaleMapsRange) {
  VdcSource src(14, 0);
  const StochStream s = StochStream::encode(2.0, 1 << 12, StochFormat::kBipolar, 4.0, src);
  EXPECT_NEAR(s.value(), 2.0, 0.01);
  // Out-of-range values clamp to the representable range.
  VdcSource src2(14, 0);
  const StochStream t = StochStream::encode(9.0, 1 << 12, StochFormat::kBipolar, 4.0, src2);
  EXPECT_NEAR(t.value(), 4.0, 0.01);
}

TEST(StochStream, EvenEncodingExact) {
  const StochStream s = StochStream::encode_even(0.25, 64, StochFormat::kUnipolar, 1.0);
  EXPECT_DOUBLE_EQ(s.probability(), 0.25);
}

class UnipolarMult : public ::testing::TestWithParam<std::pair<double, double>> {};

TEST_P(UnipolarMult, AndGateComputesProduct) {
  const auto [a, b] = GetParam();
  // Independent sources: different LFSR seeds/widths.
  LfsrSource sa(16, 0x1111), sb(15, 0x2222);
  const std::size_t len = 1 << 15;
  const StochStream xa = StochStream::encode(a, len, StochFormat::kUnipolar, 1.0, sa);
  const StochStream xb = StochStream::encode(b, len, StochFormat::kUnipolar, 1.0, sb);
  const StochStream y = mult_unipolar(xa, xb);
  EXPECT_NEAR(y.value(), a * b, 0.02);
}

INSTANTIATE_TEST_SUITE_P(Pairs, UnipolarMult,
                         ::testing::Values(std::pair{0.2, 0.5}, std::pair{0.9, 0.9},
                                           std::pair{0.0, 0.7}, std::pair{1.0, 0.3},
                                           std::pair{0.6, 0.6}));

class BipolarMult : public ::testing::TestWithParam<std::pair<double, double>> {};

TEST_P(BipolarMult, XnorGateComputesProduct) {
  const auto [a, b] = GetParam();
  LfsrSource sa(16, 0xACE1), sb(17, 0xB0B);
  const std::size_t len = 1 << 16;
  const StochStream xa = StochStream::encode(a, len, StochFormat::kBipolar, 1.0, sa);
  const StochStream xb = StochStream::encode(b, len, StochFormat::kBipolar, 1.0, sb);
  const StochStream y = mult_bipolar(xa, xb);
  EXPECT_NEAR(y.value(), a * b, 0.03);
}

INSTANTIATE_TEST_SUITE_P(Pairs, BipolarMult,
                         ::testing::Values(std::pair{0.5, 0.5}, std::pair{-0.5, 0.5},
                                           std::pair{-0.8, -0.6}, std::pair{0.0, 0.9},
                                           std::pair{1.0, -1.0}));

TEST(MuxAdd, ScaledAddition) {
  LfsrSource sa(16, 0x123), sb(17, 0x456), ssel(15, 0x789);
  const std::size_t len = 1 << 15;
  const StochStream xa = StochStream::encode(0.6, len, StochFormat::kBipolar, 1.0, sa);
  const StochStream xb = StochStream::encode(-0.2, len, StochFormat::kBipolar, 1.0, sb);
  const BitVec sel = generate_stream(0.5, len, ssel);
  const StochStream y = add_mux(xa, xb, sel);
  EXPECT_NEAR(y.value(), (0.6 - 0.2) / 2.0, 0.02);
}

TEST(MuxAdd, MismatchThrows) {
  LfsrSource s(16, 1);
  const StochStream a = StochStream::encode(0.5, 64, StochFormat::kUnipolar, 1.0, s);
  const StochStream b = StochStream::encode(0.5, 32, StochFormat::kUnipolar, 1.0, s);
  BitVec sel(64);
  EXPECT_THROW(add_mux(a, b, sel), std::invalid_argument);
}

TEST(MuxAddN, MeanOfInputs) {
  LfsrSource sel(16, 0xFEED);
  std::vector<StochStream> in;
  const double vals[] = {0.8, 0.4, -0.4, -0.8};
  for (int i = 0; i < 4; ++i) {
    LfsrSource s(16, 0x100 + static_cast<std::uint32_t>(i) * 77);
    in.push_back(StochStream::encode(vals[i], 1 << 15, StochFormat::kBipolar, 1.0, s));
  }
  const StochStream y = add_mux_n(in, sel);
  EXPECT_NEAR(y.value(), 0.0, 0.02);
}

TEST(Apc, CountsAllOnes) {
  std::vector<StochStream> in;
  for (int i = 0; i < 3; ++i)
    in.push_back(StochStream::encode_even(0.5, 100, StochFormat::kUnipolar, 1.0));
  EXPECT_EQ(apc_accumulate(in), 150);
}
