// Unit + property tests for thermometer arithmetic, including the bit-level
// vs count-level equivalence guarantees the softmax block relies on.

#include <gtest/gtest.h>

#include <cmath>
#include <random>

#include "sc/therm_arith.h"

using namespace ascend::sc;

TEST(ThermMult, ExactProductExhaustive) {
  // Every (2b x 16b) operand pair: product of levels must be exact.
  for (int na = 0; na <= 2; ++na)
    for (int nb = 0; nb <= 16; ++nb) {
      const ThermValue a{na, 2, 0.5};
      const ThermValue b{nb, 16, 0.25};
      const ThermValue p = mult(a, b);
      EXPECT_EQ(p.length, 16);
      EXPECT_DOUBLE_EQ(p.alpha, 0.125);
      EXPECT_DOUBLE_EQ(p.value(), a.value() * b.value());
    }
}

TEST(ThermMult, BitPathMatchesCountPath) {
  for (int na = 0; na <= 4; ++na)
    for (int nb = 0; nb <= 8; ++nb) {
      const ThermValue a{na, 4, 1.0};
      const ThermValue b{nb, 8, 0.5};
      const ThermStream sp = mult(ThermStream::from_value(a), ThermStream::from_value(b));
      const ThermValue cp = mult(a, b);
      EXPECT_EQ(sp.ones(), cp.ones);
      EXPECT_EQ(sp.length(), cp.length);
      EXPECT_DOUBLE_EQ(sp.value(), cp.value());
    }
}

TEST(ThermMult, RejectsOddBsl) {
  EXPECT_THROW(mult(ThermValue{1, 3, 1.0}, ThermValue{1, 4, 1.0}), std::invalid_argument);
}

TEST(ThermAdd, BsnConcatEqualsSum) {
  std::mt19937 rng(7);
  for (int trial = 0; trial < 50; ++trial) {
    const int count = 2 + static_cast<int>(rng() % 6);
    std::vector<ThermValue> vals;
    std::vector<ThermStream> streams;
    double expect = 0.0;
    for (int i = 0; i < count; ++i) {
      const int l = 2 * (1 + static_cast<int>(rng() % 8));
      const int n = static_cast<int>(rng() % static_cast<unsigned>(l + 1));
      vals.push_back(ThermValue{n, l, 0.5});
      streams.push_back(ThermStream::from_value(vals.back()));
      expect += vals.back().value();
    }
    const ThermValue sum_c = add(vals);
    const ThermStream sum_b = add(streams);
    EXPECT_DOUBLE_EQ(sum_c.value(), expect);
    EXPECT_EQ(sum_b.ones(), sum_c.ones);
    EXPECT_EQ(sum_b.length(), sum_c.length);
    EXPECT_TRUE(sum_b.is_canonical());
  }
}

TEST(ThermAdd, RejectsScaleMismatch) {
  EXPECT_THROW(add({ThermValue{1, 2, 1.0}, ThermValue{1, 2, 0.5}}), std::invalid_argument);
  EXPECT_THROW(add(std::vector<ThermValue>{}), std::invalid_argument);
}

TEST(ThermNegate, InvertsLevel) {
  for (int n = 0; n <= 8; ++n) {
    const ThermValue v{n, 8, 0.5};
    EXPECT_DOUBLE_EQ(negate(v).value(), -v.value());
    const ThermStream s = negate(ThermStream::from_value(v));
    EXPECT_DOUBLE_EQ(s.value(), -v.value());
    EXPECT_TRUE(s.is_canonical());
  }
}

TEST(ThermExpand, ExactValuePreservation) {
  for (int n = 0; n <= 6; ++n)
    for (int e = 1; e <= 5; ++e) {
      const ThermValue v{n, 6, 0.75};
      const ThermValue x = expand(v, e);
      EXPECT_DOUBLE_EQ(x.value(), v.value());
      EXPECT_EQ(x.length, 6 * e);
      const ThermStream s = expand(ThermStream::from_value(v), e);
      EXPECT_EQ(s.ones(), x.ones);
      EXPECT_TRUE(s.is_canonical());
    }
}

TEST(ThermSubsample, FloorSemantics) {
  // n -> floor(n/s): sub-sampling a canonical bundle takes every s-th wire.
  for (int n = 0; n <= 16; ++n)
    for (int s : {2, 4, 8}) {
      const ThermValue v{n, 16, 0.25};
      const ThermValue r = subsample(v, s);
      EXPECT_EQ(r.ones, n / s);
      EXPECT_EQ(r.length, 16 / s);
      EXPECT_DOUBLE_EQ(r.alpha, 0.25 * s);
      const ThermStream sb = subsample(ThermStream::from_value(v), s);
      EXPECT_EQ(sb.ones(), r.ones);
      EXPECT_DOUBLE_EQ(sb.value(), r.value());
    }
}

TEST(ThermSubsample, ErrorBounded) {
  // |value_after - value_before| < alpha * s (one coarse grid step).
  for (int n = 0; n <= 32; ++n) {
    const ThermValue v{n, 32, 0.1};
    const ThermValue r = subsample(v, 4);
    EXPECT_LT(std::fabs(r.value() - v.value()), 0.1 * 4 + 1e-12);
  }
}

TEST(ThermSubsample, RejectsNonDividingRate) {
  EXPECT_THROW(subsample(ThermValue{1, 6, 1.0}, 4), std::invalid_argument);
}

TEST(ThermDivideByConst, OnlyScalesAlpha) {
  const ThermValue v{5, 8, 1.0};
  const ThermValue d = divide_by_const(v, 3.0);
  EXPECT_EQ(d.ones, 5);
  EXPECT_EQ(d.length, 8);
  EXPECT_DOUBLE_EQ(d.value(), v.value() / 3.0);
  EXPECT_THROW(divide_by_const(v, 0.0), std::invalid_argument);
}

TEST(ApproxRational, ExactRatios) {
  const Rational r = approx_rational(0.375, 64);  // 3/8
  EXPECT_EQ(r.num, 3);
  EXPECT_EQ(r.den, 8);
  const Rational u = approx_rational(4.0, 64);
  EXPECT_EQ(u.num, 4);
  EXPECT_EQ(u.den, 1);
}

TEST(ApproxRational, BoundedError) {
  std::mt19937 rng(3);
  std::uniform_real_distribution<double> dist(0.01, 50.0);
  for (int i = 0; i < 200; ++i) {
    const double x = dist(rng);
    const Rational r = approx_rational(x, 64);
    EXPECT_LE(r.den, 64);
    EXPECT_GE(r.num, 1);
    EXPECT_NEAR(r.as_double(), x, x * 0.05 + 0.02);
  }
}

TEST(ApproxRational, RejectsBadInput) {
  EXPECT_THROW(approx_rational(-1.0, 8), std::invalid_argument);
  EXPECT_THROW(approx_rational(1.0, 0), std::invalid_argument);
}

TEST(ThermRescale, IdentityWhenSameGrid) {
  for (int n = 0; n <= 8; ++n) {
    const ThermValue v{n, 8, 0.5};
    const ThermValue r = rescale(v, 8, 0.5);
    EXPECT_EQ(r.ones, n);
  }
}

TEST(ThermRescale, SaturatesOutOfRange) {
  // Value +4 re-gridded onto range +-1 must clamp to +1.
  const ThermValue v = ThermValue::encode(4.0, 16, 0.5);
  const ThermValue r = rescale(v, 4, 0.5);
  EXPECT_EQ(r.ones, 4);
  EXPECT_DOUBLE_EQ(r.value(), 1.0);
  const ThermValue w = ThermValue::encode(-4.0, 16, 0.5);
  EXPECT_DOUBLE_EQ(rescale(w, 4, 0.5).value(), -1.0);
}

class RescaleEquivalence : public ::testing::TestWithParam<int> {};

TEST_P(RescaleEquivalence, BitPathMatchesCountPathRandomly) {
  std::mt19937 rng(GetParam());
  for (int trial = 0; trial < 60; ++trial) {
    const int l = 2 * (1 + static_cast<int>(rng() % 24));
    const int n = static_cast<int>(rng() % static_cast<unsigned>(l + 1));
    const double alpha = 0.05 * (1 + static_cast<int>(rng() % 40));
    const int lt = 2 * (1 + static_cast<int>(rng() % 16));
    const double alpha_t = 0.05 * (1 + static_cast<int>(rng() % 40));
    const ThermValue v{n, l, alpha};
    const ThermValue rc = rescale(v, lt, alpha_t);
    const ThermStream rb = rescale(ThermStream::from_value(v), lt, alpha_t);
    EXPECT_EQ(rb.ones(), rc.ones) << "L=" << l << " n=" << n << " a=" << alpha << " Lt=" << lt
                                  << " at=" << alpha_t;
    EXPECT_EQ(rb.length(), rc.length);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RescaleEquivalence, ::testing::Range(1, 13));

TEST(ThermRescale, QuantizationErrorBounded) {
  // In-range rescaling error must stay within ~1.5 target grid steps (floor
  // subsampling + rational scale approximation).
  std::mt19937 rng(11);
  for (int trial = 0; trial < 300; ++trial) {
    const int l = 2 * (4 + static_cast<int>(rng() % 28));
    const int n = static_cast<int>(rng() % static_cast<unsigned>(l + 1));
    const ThermValue v{n, l, 0.125};
    const int lt = 2 * (4 + static_cast<int>(rng() % 12));
    const double alpha_t = 0.25;
    if (std::fabs(v.value()) > alpha_t * lt / 2.0 - alpha_t) continue;  // skip saturation zone
    const ThermValue r = rescale(v, lt, alpha_t);
    EXPECT_LE(std::fabs(r.value() - v.value()), 1.5 * alpha_t + 1e-9)
        << "L=" << l << " n=" << n << " Lt=" << lt;
  }
}
