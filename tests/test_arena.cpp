// Per-forward activation arenas (runtime/arena.h): bump/reset/consolidation
// mechanics, the thread-local scope plumbing, bit-exactness of arena-backed
// inference vs plain heap inference for all four serving variants, resize on
// batch-shape change, isolation of concurrent forwards, and the PR's core
// acceptance claim — steady-state allocations per forward == 0 on the sc-lut
// and w2a2-packed variants (this target links the operator-new interposer;
// see alloc_interpose in CMakeLists.txt).

#include <gtest/gtest.h>

#include <cstdint>
#include <numeric>
#include <string_view>
#include <thread>
#include <vector>

#include "nn/tensor.h"
#include "runtime/alloc_count.h"
#include "runtime/arena.h"
#include "runtime/engine.h"
#include "runtime/loader.h"
#include "runtime/registry.h"
#include "serialize/model_io.h"
#include "vit/model.h"
#include "vit/servable.h"
#include "vit/train.h"

using namespace ascend;
using namespace ascend::runtime;

// ---------------------------------------------------------------------------
// Arena mechanics
// ---------------------------------------------------------------------------

TEST(Arena, BumpAllocationIsAlignedAndTracked) {
  Arena arena;
  EXPECT_EQ(arena.used(), 0u);
  void* a = arena.allocate(100);
  void* b = arena.allocate(40);
  EXPECT_NE(a, b);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(a) % Arena::kDefaultAlign, 0u);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(b) % Arena::kDefaultAlign, 0u);
  EXPECT_GE(arena.used(), 140u);
  EXPECT_GE(arena.capacity(), arena.used());
}

TEST(Arena, ResetConsolidatesToSingleSlabCoveringPeak) {
  Arena arena(1024);  // deliberately small: force multi-block growth
  for (int i = 0; i < 64; ++i) (void)arena.allocate(4096);
  EXPECT_GT(arena.block_count(), 1u);
  const std::size_t peak = arena.used();
  EXPECT_EQ(arena.peak(), peak);
  arena.reset();
  EXPECT_EQ(arena.block_count(), 1u);
  EXPECT_EQ(arena.used(), 0u);
  EXPECT_GE(arena.capacity(), peak);
  // The same demand is now served with no further growth or consolidation.
  const std::uint64_t cons = arena.consolidations();
  for (int cycle = 0; cycle < 3; ++cycle) {
    for (int i = 0; i < 64; ++i) (void)arena.allocate(4096);
    EXPECT_EQ(arena.block_count(), 1u) << "steady-state cycle " << cycle;
    arena.reset();
  }
  EXPECT_EQ(arena.consolidations(), cons);
}

TEST(Arena, ScopesInstallSuspendAndRestore) {
  EXPECT_EQ(Arena::current(), nullptr);
  Arena a1, a2;
  {
    ArenaScope s1(a1);
    EXPECT_EQ(Arena::current(), &a1);
    {
      ArenaScope s2(a2);
      EXPECT_EQ(Arena::current(), &a2);
      {
        HeapScope h;
        EXPECT_EQ(Arena::current(), nullptr);
      }
      EXPECT_EQ(Arena::current(), &a2);
    }
    EXPECT_EQ(Arena::current(), &a1);
  }
  EXPECT_EQ(Arena::current(), nullptr);
}

TEST(Arena, TensorsCarveFromTheInstalledArena) {
  Arena arena;
  nn::Tensor heap_t({4, 8});
  EXPECT_FALSE(heap_t.arena_backed());
  {
    ArenaScope scope(arena);
    nn::Tensor t({4, 8});
    EXPECT_TRUE(t.arena_backed());
    EXPECT_EQ(reinterpret_cast<std::uintptr_t>(t.data()) % Arena::kDefaultAlign, 0u);
    EXPECT_GE(arena.used(), 4u * 8u * sizeof(float));
    // Copying an arena tensor inside the scope stays in the arena; moving
    // out of the scope keeps pointing at arena storage (the lease must
    // outlive all reads — engine.cpp's process_batch ordering).
    nn::Tensor c = t;
    EXPECT_TRUE(c.arena_backed());
  }
  nn::Tensor after({2, 2});
  EXPECT_FALSE(after.arena_backed());
}

TEST(ArenaPool, LeasesRecycleWarmArenas) {
  ArenaPool pool;
  const Arena* first = nullptr;
  {
    ArenaLease lease(pool);
    first = &lease.arena();
    EXPECT_EQ(Arena::current(), &lease.arena());
    (void)lease.arena().allocate(1 << 16);
  }
  EXPECT_EQ(pool.created(), 1u);
  {
    ArenaLease lease(pool);
    EXPECT_EQ(&lease.arena(), first) << "the warm arena is reused, not rebuilt";
    EXPECT_EQ(lease.arena().used(), 0u) << "released arenas come back reset";
  }
  EXPECT_EQ(pool.created(), 1u);
}

// ---------------------------------------------------------------------------
// Arena-backed inference vs heap inference — all four variants
// ---------------------------------------------------------------------------

namespace {

vit::VitConfig tiny_topology() {
  vit::VitConfig cfg;
  cfg.image_size = 16;
  cfg.patch_size = 8;  // 4 tokens
  cfg.dim = 16;
  cfg.layers = 1;
  cfg.heads = 2;
  cfg.mlp_ratio = 2;
  cfg.classes = 4;
  return cfg;
}

vit::ScInferenceConfig tiny_sc_config() {
  vit::ScInferenceConfig cfg;
  cfg.use_sc_softmax = true;
  cfg.use_sc_gelu = true;
  cfg.gelu_bsl = 8;
  cfg.gelu_range = 6.0;
  return cfg;
}

/// One calibrated W2A2 model and the four fidelity servables over it, plus a
/// deterministic image batch — the shared fixture of the equivalence tests.
struct VariantRig {
  vit::VitConfig top = tiny_topology();
  vit::Dataset data;
  nn::Tensor images;
  vit::VisionTransformer model;
  std::vector<std::pair<const char*, std::shared_ptr<Servable>>> variants;

  explicit VariantRig(int samples = 6, std::uint64_t seed = 91)
      : data(vit::make_synthetic_vision(samples, top.classes, 81, top.image_size)),
        images(nn::Tensor({samples, top.channels * top.image_size * top.image_size})),
        model(top, seed) {
    std::vector<int> idx(static_cast<std::size_t>(data.size()));
    std::iota(idx.begin(), idx.end(), 0);
    images = vit::take_batch(data, idx).images;
    model.apply_precision(vit::PrecisionSpec::w2a2r16());
    (void)model.forward(images, /*training=*/false);  // latch LSQ steps
    vit::ScServableOptions sopts;
    sopts.threads = 1;
    const vit::ScInferenceConfig sc = tiny_sc_config();
    variants.emplace_back("w2a2-packed", vit::make_packed_ternary_servable(model, "w2a2"));
    variants.emplace_back("sc-lut", vit::make_sc_servable(model, sc, sopts, "sc-lut"));
    sopts.use_tf_cache = false;
    variants.emplace_back("sc-emu", vit::make_sc_servable(model, sc, sopts, "sc-emu"));
    variants.emplace_back("fp32", vit::make_fp32_servable(model, "fp32"));
  }
};

void expect_bitwise_equal(const nn::Tensor& a, const nn::Tensor& b, const char* what) {
  ASSERT_EQ(a.shape(), b.shape()) << what;
  for (std::size_t i = 0; i < a.size(); ++i) ASSERT_EQ(a[i], b[i]) << what << " logit " << i;
}

/// Deep-copies `t` out of the arena so it can be compared after the scope.
/// HeapScope keeps the copy itself off the arena — without it the "copy"
/// would be carved from the same arena and dangle after reset().
nn::Tensor copy_out(const nn::Tensor& t) {
  HeapScope heap;
  nn::Tensor out = nn::Tensor::uninitialized(t.shape());
  for (std::size_t i = 0; i < t.size(); ++i) out[i] = t[i];
  return out;
}

}  // namespace

TEST(ArenaInference, BitExactVsHeapForAllFourVariants) {
  VariantRig rig;
  for (const auto& [name, servable] : rig.variants) {
    const nn::Tensor heap_logits = servable->infer(rig.images);
    Arena arena;
    nn::Tensor first, second;
    {
      ArenaScope scope(arena);
      first = copy_out(servable->infer(rig.images));  // sizing pass
    }
    arena.reset();  // consolidate to peak
    {
      ArenaScope scope(arena);
      second = copy_out(servable->infer(rig.images));  // warm reuse pass
    }
    arena.reset();
    expect_bitwise_equal(first, heap_logits, name);
    expect_bitwise_equal(second, heap_logits, name);
    EXPECT_EQ(arena.block_count(), 1u) << name;
  }
}

TEST(ArenaInference, ArenaResizesAcrossBatchShapeChanges) {
  VariantRig rig(/*samples=*/9);
  const auto& servable = rig.variants[0].second;  // w2a2-packed

  Arena arena;
  // Size on batch 3, then overflow with batch 9: the resize is just another
  // sizing cycle, and results stay bit-exact with heap inference throughout.
  nn::Tensor batch3 = nn::Tensor::uninitialized({3, rig.images.dim(1)});
  for (int r = 0; r < 3; ++r)
    for (int c = 0; c < rig.images.dim(1); ++c) batch3.at(r, c) = rig.images.at(r, c);
  const nn::Tensor heap3 = servable->infer(batch3);
  const nn::Tensor heap9 = servable->infer(rig.images);
  {
    ArenaScope scope(arena);
    expect_bitwise_equal(copy_out(servable->infer(batch3)), heap3, "batch 3 sizing");
  }
  arena.reset();
  const std::size_t peak3 = arena.peak();
  {
    ArenaScope scope(arena);
    expect_bitwise_equal(copy_out(servable->infer(rig.images)), heap9, "batch 9 resize");
  }
  EXPECT_GT(arena.peak(), peak3) << "larger batch must raise the high-water mark";
  arena.reset();
  EXPECT_EQ(arena.block_count(), 1u);
  {
    ArenaScope scope(arena);
    expect_bitwise_equal(copy_out(servable->infer(rig.images)), heap9, "batch 9 warm");
  }
  EXPECT_EQ(arena.block_count(), 1u) << "consolidated slab absorbs the resized demand";
}

TEST(ArenaInference, ConcurrentForwardsUseIsolatedArenas) {
  // Four threads, each leasing its own arena from a shared pool and running
  // the same forward: every result must match the serial heap result
  // bit-for-bit (the TSan job runs this too).
  VariantRig rig;
  const auto& servable = rig.variants[0].second;
  const nn::Tensor heap_logits = servable->infer(rig.images);
  ArenaPool pool;
  constexpr int kThreads = 4;
  std::vector<nn::Tensor> results(kThreads);
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t)
    threads.emplace_back([&, t] {
      for (int pass = 0; pass < 3; ++pass) {
        ArenaLease lease(pool);
        results[static_cast<std::size_t>(t)] = copy_out(servable->infer(rig.images));
      }
    });
  for (auto& t : threads) t.join();
  for (int t = 0; t < kThreads; ++t)
    expect_bitwise_equal(results[static_cast<std::size_t>(t)], heap_logits, "thread result");
  EXPECT_LE(pool.created(), static_cast<std::size_t>(kThreads));
}

// ---------------------------------------------------------------------------
// The acceptance claim: steady-state allocations per forward == 0
// ---------------------------------------------------------------------------

namespace {

/// Allocations per forward at steady state: warm up inside the arena (sizing
/// pass + grow-only thread-local scratch), then measure the counter across
/// `iters` forwards.
std::uint64_t steady_state_allocs(const Servable& servable, const nn::Tensor& images,
                                  Arena& arena, int iters = 5) {
  for (int i = 0; i < 3; ++i) {
    ArenaScope scope(arena);
    (void)servable.infer(images);
    arena.reset();
  }
  const std::uint64_t before = alloc_count();
  for (int i = 0; i < iters; ++i) {
    ArenaScope scope(arena);
    (void)servable.infer(images);
    arena.reset();
  }
  return alloc_count() - before;
}

}  // namespace

TEST(AllocFree, SteadyStateZeroAllocsPerForwardOnServingVariants) {
  ASSERT_TRUE(alloc_counting_active())
      << "test_arena must link alloc_interpose (see CMakeLists.txt)";
  VariantRig rig;
  Arena arena;
  for (const auto& [name, servable] : rig.variants) {
    if (std::string_view(name) == "sc-emu" || std::string_view(name) == "fp32")
      continue;  // emulated SC allocates inside softmax_iterative_sc by design
    EXPECT_EQ(steady_state_allocs(*servable, rig.images, arena), 0u)
        << name << ": steady-state forwards must not touch the heap";
  }
}

TEST(AllocFree, HeapBackedForwardAllocatesForContrast) {
  // Sanity check that the interposer actually observes the infer path: the
  // same forward with no arena installed must report heap traffic.
  ASSERT_TRUE(alloc_counting_active());
  VariantRig rig;
  const auto& servable = rig.variants[0].second;
  (void)servable->infer(rig.images);  // warm the thread-local scratch
  const std::uint64_t before = alloc_count();
  (void)servable->infer(rig.images);
  EXPECT_GT(alloc_count() - before, 0u);
}

TEST(AllocFree, MmapBackedWeightsStayZeroAllocAtSteadyState) {
  // Checkpoint cold start must not regress the zero-alloc acceptance claim:
  // weights served as borrowed views into the read-only mapping behave like
  // heap weights on the steady-state path — no per-forward heap traffic.
  ASSERT_TRUE(alloc_counting_active());
  VariantRig rig;
  const std::string path = testing::TempDir() + "alloc_mmap.ckpt";
  rig.model.save(path);
  ModelRegistry registry;
  registry.register_from_file("w2a2", path, VariantKind::kPackedTernary);
  const auto servable = registry.get("w2a2");
  expect_bitwise_equal(servable->infer(rig.images), rig.variants[0].second->infer(rig.images),
                       "mmap cold start vs in-memory servable");
  Arena arena;
  EXPECT_EQ(steady_state_allocs(*servable, rig.images, arena), 0u)
      << "mmap-backed forwards must not touch the heap at steady state";
}

TEST(AllocFree, LoaderSteadyStateDoesNotAllocate) {
  ASSERT_TRUE(alloc_counting_active());
  LoaderOptions opts;
  opts.workers = 2;
  opts.prefetch_batches = 3;
  opts.batch_size = 4;
  opts.loop = true;
  Loader loader([](int index, float* dst) { dst[0] = static_cast<float>(index); },
                /*num_samples=*/32, /*sample_dim=*/1, opts);
  for (int i = 0; i < 8; ++i) loader.recycle(loader.next());  // warm the ring
  const std::uint64_t before = alloc_count();
  for (int i = 0; i < 64; ++i) {
    const Loader::Batch b = loader.next();
    loader.recycle(b);
  }
  EXPECT_EQ(alloc_count() - before, 0u);
}

// ---------------------------------------------------------------------------
// Tensor copy audit pin
// ---------------------------------------------------------------------------

TEST(TensorCopies, InferPathCopyCountPinned) {
  // The infer-path copy audit (ops.cpp, module.cpp, quant.cpp) eliminated
  // every whole-tensor copy from the packed-ternary forward. Pin it at zero
  // so a future "Tensor y = x; mutate(y)" pattern re-fails review here.
  VariantRig rig;
  const auto& servable = rig.variants[0].second;  // w2a2-packed
  (void)servable->infer(rig.images);              // snapshots latched
  const std::uint64_t before = nn::Tensor::copies();
  (void)servable->infer(rig.images);
  EXPECT_EQ(nn::Tensor::copies() - before, 0u);
}

TEST(TensorCopies, CounterObservesDeliberateCopies) {
  const std::uint64_t before = nn::Tensor::copies();
  nn::Tensor a({3, 3});
  nn::Tensor b = a;        // copy ctor
  nn::Tensor c;
  c = b;                   // copy assign
  nn::Tensor d = std::move(b);  // move: not counted
  (void)c;
  (void)d;
  EXPECT_EQ(nn::Tensor::copies() - before, 2u);
}
