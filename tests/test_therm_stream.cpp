// Unit tests for the deterministic thermometer encoding.

#include <gtest/gtest.h>

#include <set>

#include "sc/therm_stream.h"

using namespace ascend::sc;

TEST(ThermValue, EncodeDecodesOnGrid) {
  // L = 8, alpha = 0.5: grid {-2, -1.5, ..., +2}.
  for (int n = 0; n <= 8; ++n) {
    const double x = 0.5 * (n - 4);
    const ThermValue v = ThermValue::encode(x, 8, 0.5);
    EXPECT_EQ(v.ones, n);
    EXPECT_DOUBLE_EQ(v.value(), x);
  }
}

TEST(ThermValue, RoundsToNearest) {
  EXPECT_DOUBLE_EQ(ThermValue::encode(0.24, 8, 0.5).value(), 0.0);
  EXPECT_DOUBLE_EQ(ThermValue::encode(0.26, 8, 0.5).value(), 0.5);
  EXPECT_DOUBLE_EQ(ThermValue::encode(-0.74, 8, 0.5).value(), -0.5);
}

TEST(ThermValue, SaturatesAtRange) {
  EXPECT_DOUBLE_EQ(ThermValue::encode(100.0, 8, 0.5).value(), 2.0);
  EXPECT_DOUBLE_EQ(ThermValue::encode(-100.0, 8, 0.5).value(), -2.0);
}

TEST(ThermValue, RepresentsLPlusOneValues) {
  // A BSL of L distinguishes exactly L+1 values (paper Section III-C).
  std::set<double> values;
  for (int n = 0; n <= 16; ++n) values.insert(ThermValue{n, 16, 0.25}.value());
  EXPECT_EQ(values.size(), 17u);
}

TEST(ThermValue, RangeAccessor) {
  EXPECT_DOUBLE_EQ((ThermValue{0, 8, 0.5}).range(), 2.0);
}

TEST(ThermValue, RejectsBadArgs) {
  EXPECT_THROW(ThermValue::encode(0.0, 0, 1.0), std::invalid_argument);
  EXPECT_THROW(ThermValue::encode(0.0, 4, -1.0), std::invalid_argument);
}

TEST(ThermStream, CanonicalBitsFromValue) {
  const ThermStream s = ThermStream::encode(1.0, 8, 0.5);
  EXPECT_EQ(s.bits.to_string(), "11111100");
  EXPECT_TRUE(s.is_canonical());
  EXPECT_DOUBLE_EQ(s.value(), 1.0);
}

TEST(ThermStream, ToValueRoundtrip) {
  for (int n = 0; n <= 6; ++n) {
    const ThermStream s = ThermStream::from_value(ThermValue{n, 6, 0.75});
    EXPECT_EQ(s.ones(), n);
    EXPECT_EQ(s.length(), 6);
    const ThermValue v = s.to_value();
    EXPECT_EQ(v.ones, n);
    EXPECT_DOUBLE_EQ(v.value(), s.value());
  }
}

TEST(ThermStream, FromValueRejectsBadCount) {
  EXPECT_THROW(ThermStream::from_value(ThermValue{9, 8, 1.0}), std::invalid_argument);
  EXPECT_THROW(ThermStream::from_value(ThermValue{-1, 8, 1.0}), std::invalid_argument);
}

class ThermGrid : public ::testing::TestWithParam<int> {};

TEST_P(ThermGrid, BitAndCountPathsAgreeEverywhere) {
  const int l = GetParam();
  for (int step = -2 * l; step <= 2 * l; ++step) {
    const double x = 0.37 * step;
    const ThermValue v = ThermValue::encode(x, l, 0.37 * 2);
    const ThermStream s = ThermStream::encode(x, l, 0.37 * 2);
    EXPECT_EQ(s.ones(), v.ones);
    EXPECT_DOUBLE_EQ(s.value(), v.value());
    EXPECT_TRUE(s.is_canonical());
  }
}

INSTANTIATE_TEST_SUITE_P(Lengths, ThermGrid, ::testing::Values(2, 4, 8, 16, 32));
