// Tests for the model-agnostic serving API: the Servable contract, the
// ModelRegistry (publish / get / generation-counted hot-swap), the
// priority/deadline-aware batcher scheduling, engine routing across
// variants, per-priority stats, and the ViT servable adapters
// (fp32 / packed-ternary / SC) built from one trained model.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <mutex>
#include <numeric>
#include <thread>
#include <vector>

#include "runtime/batcher.h"
#include "runtime/engine.h"
#include "runtime/registry.h"
#include "runtime/servable.h"
#include "vit/model.h"
#include "vit/servable.h"
#include "vit/train.h"

using namespace ascend;
using namespace ascend::runtime;

namespace {

/// Deterministic toy servable: label = round(payload[0]) + `bias`, logits
/// one-hot. Records every served payload row in arrival order and counts
/// forwards, so tests can assert scheduling order and that dropped requests
/// never reach a forward.
class MockServable final : public Servable {
 public:
  MockServable(std::string id, int bias = 0, std::chrono::milliseconds delay = {})
      : id_(std::move(id)), bias_(bias), delay_(delay) {}

  nn::Tensor infer(const nn::Tensor& batch) const override {
    if (delay_.count() > 0) std::this_thread::sleep_for(delay_);
    nn::Tensor logits({batch.dim(0), kClasses});
    std::lock_guard<std::mutex> lock(mu_);
    forwards_ += 1;
    for (int r = 0; r < batch.dim(0); ++r) {
      const int label = (static_cast<int>(batch.at(r, 0)) + bias_) % kClasses;
      logits.at(r, label) = 1.0f;
      served_.push_back(batch.at(r, 0));
    }
    return logits;
  }
  int input_dim() const override { return kInputDim; }
  int output_dim() const override { return kClasses; }
  const std::string& variant_id() const override { return id_; }

  int forwards() const {
    std::lock_guard<std::mutex> lock(mu_);
    return forwards_;
  }
  std::vector<float> served() const {
    std::lock_guard<std::mutex> lock(mu_);
    return served_;
  }

  static constexpr int kInputDim = 4;
  static constexpr int kClasses = 8;

 private:
  std::string id_;
  int bias_;
  std::chrono::milliseconds delay_;
  mutable std::mutex mu_;
  mutable int forwards_ = 0;
  mutable std::vector<float> served_;
};

std::vector<float> payload(float head) {
  std::vector<float> p(MockServable::kInputDim, 0.0f);
  p[0] = head;
  return p;
}

RequestOptions req(Priority p, std::string variant = {},
                   std::chrono::microseconds deadline = std::chrono::microseconds{0}) {
  RequestOptions o;
  o.priority = p;
  o.variant = std::move(variant);
  o.deadline = deadline;
  return o;
}

}  // namespace

// ---------------------------------------------------------------------------
// ModelRegistry
// ---------------------------------------------------------------------------

TEST(ModelRegistry, PublishGetAndVariantIdsInFirstPublishOrder) {
  ModelRegistry reg;
  EXPECT_EQ(reg.size(), 0u);
  EXPECT_FALSE(reg.contains("b"));
  EXPECT_EQ(reg.publish(std::make_shared<MockServable>("b")), 1u);
  EXPECT_EQ(reg.publish(std::make_shared<MockServable>("a")), 1u);
  EXPECT_EQ(reg.size(), 2u);
  EXPECT_TRUE(reg.contains("a"));
  EXPECT_EQ(reg.get("b")->variant_id(), "b");
  // First-publish order, not lexicographic.
  EXPECT_EQ(reg.variant_ids(), (std::vector<std::string>{"b", "a"}));
  EXPECT_THROW(reg.get("zzz"), UnknownVariantError);
  EXPECT_EQ(reg.try_get("zzz"), nullptr);
  EXPECT_THROW(reg.publish(nullptr), std::invalid_argument);
}

TEST(ModelRegistry, HotSwapBumpsGenerationAndKeepsOldSnapshotAlive) {
  ModelRegistry reg;
  auto v1 = std::make_shared<MockServable>("m", /*bias=*/0);
  reg.publish(v1);
  EXPECT_EQ(reg.generation("m"), 1u);
  const std::shared_ptr<const Servable> snapshot = reg.get("m");

  auto v2 = std::make_shared<MockServable>("m", /*bias=*/1);
  EXPECT_EQ(reg.publish(v2), 2u);
  EXPECT_EQ(reg.generation("m"), 2u);
  // The pre-swap snapshot still works: in-flight forwards are never broken.
  nn::Tensor x({1, MockServable::kInputDim});
  x.at(0, 0) = 3.0f;
  EXPECT_EQ(snapshot->infer(x).at(0, 3), 1.0f);  // bias 0: label 3
  EXPECT_EQ(reg.get("m")->infer(x).at(0, 4), 1.0f);  // bias 1: label 4
  EXPECT_EQ(reg.generation("absent"), 0u);
}

// ---------------------------------------------------------------------------
// Batcher: priority scheduling, variant grouping, deadlines
// ---------------------------------------------------------------------------

TEST(PriorityBatcher, InteractivePreemptsQueuedBatchTrafficInQueueOrder) {
  Batcher b(2, std::chrono::microseconds(0));  // close immediately once inspected
  auto f0 = b.enqueue(payload(0), req(Priority::kBatch));
  auto f1 = b.enqueue(payload(1), req(Priority::kBatch));
  auto f2 = b.enqueue(payload(2), req(Priority::kInteractive));
  auto f3 = b.enqueue(payload(3), req(Priority::kNormal));
  auto f4 = b.enqueue(payload(4), req(Priority::kInteractive));

  // Interactive first (arrival order within the class), then normal, then
  // the batch-class stragglers.
  auto batch = b.next_batch();
  ASSERT_EQ(batch.size(), 2u);
  EXPECT_EQ(batch[0].image[0], 2.0f);
  EXPECT_EQ(batch[1].image[0], 4.0f);
  batch = b.next_batch();
  ASSERT_EQ(batch.size(), 2u);
  EXPECT_EQ(batch[0].image[0], 3.0f);
  EXPECT_EQ(batch[1].image[0], 0.0f);
  batch = b.next_batch();
  ASSERT_EQ(batch.size(), 1u);
  EXPECT_EQ(batch[0].image[0], 1.0f);
  b.close();
}

TEST(PriorityBatcher, BatchesNeverMixVariants) {
  Batcher b(8, std::chrono::microseconds(0));
  auto f0 = b.enqueue(payload(0), req(Priority::kNormal, "x"));
  auto f1 = b.enqueue(payload(1), req(Priority::kNormal, "y"));
  auto f2 = b.enqueue(payload(2), req(Priority::kNormal, "x"));

  // Leader is the oldest normal request (variant x); its batch takes every
  // compatible x request but must leave y alone.
  auto batch = b.next_batch();
  ASSERT_EQ(batch.size(), 2u);
  EXPECT_EQ(batch[0].variant, "x");
  EXPECT_EQ(batch[0].image[0], 0.0f);
  EXPECT_EQ(batch[1].image[0], 2.0f);
  batch = b.next_batch();
  ASSERT_EQ(batch.size(), 1u);
  EXPECT_EQ(batch[0].variant, "y");
  b.close();
}

TEST(PriorityBatcher, HigherPriorityVariantReaimsTheNextBatch) {
  Batcher b(4, std::chrono::microseconds(200'000));  // 200 ms latency budget
  auto f0 = b.enqueue(payload(0), req(Priority::kBatch, "slow"));
  // While the dispatcher would wait out the batch's latency budget, an
  // interactive request for another variant arrives and must be served first.
  std::thread late([&b] {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    auto f = b.enqueue(payload(1), req(Priority::kInteractive, "fast",
                                       std::chrono::microseconds(1)));  // expires fast
  });
  // Use a deadline-free probe instead: enqueue on a second thread without
  // deadline so the re-aim is observable deterministically.
  std::thread late2([&b] {
    std::this_thread::sleep_for(std::chrono::milliseconds(40));
    auto f = b.enqueue(payload(2), req(Priority::kInteractive, "fast"));
  });
  late.join();
  late2.join();
  auto batch = b.next_batch();
  ASSERT_GE(batch.size(), 1u);
  EXPECT_EQ(batch[0].variant, "fast");
  b.close();
}

TEST(PriorityBatcher, NegativeDeadlineFailsFastWithoutQueueing) {
  Batcher b(4, std::chrono::microseconds(1000));
  int drops = 0;
  b.set_drop_observer([&drops](Priority p) {
    EXPECT_EQ(p, Priority::kInteractive);
    ++drops;
  });
  auto fut = b.enqueue(payload(1), req(Priority::kInteractive, {},
                                       std::chrono::microseconds(-1)));
  EXPECT_EQ(b.pending(), 0u);
  EXPECT_THROW(fut.get(), DeadlineExceededError);
  EXPECT_EQ(drops, 1);
  b.close();
}

TEST(PriorityBatcher, ExpiredRequestIsDroppedAtBatchFormation) {
  Batcher b(4, std::chrono::microseconds(30'000));
  auto doomed = b.enqueue(payload(1), req(Priority::kNormal, {},
                                          std::chrono::microseconds(1'000)));
  std::this_thread::sleep_for(std::chrono::milliseconds(10));  // let it expire
  auto live = b.enqueue(payload(2), req(Priority::kNormal));
  auto batch = b.next_batch();  // latency cutoff eventually releases `live`
  ASSERT_EQ(batch.size(), 1u);
  EXPECT_EQ(batch[0].image[0], 2.0f);
  EXPECT_THROW(doomed.get(), DeadlineExceededError);
  b.close();
}

TEST(PriorityBatcher, MemberDeadlineClosesTheBatchEarlyAndIsServed) {
  // A serviceable request with a deadline tighter than the latency budget
  // must close its batch ahead of the deadline and be served — the drop
  // path is reserved for requests the scheduler genuinely could not reach
  // in time.
  Batcher b(64, std::chrono::microseconds(400'000));  // 400 ms batching budget
  auto tight = b.enqueue(payload(1), req(Priority::kNormal, {},
                                         std::chrono::microseconds(25'000)));
  auto lax = b.enqueue(payload(2), req(Priority::kNormal));
  const auto t0 = std::chrono::steady_clock::now();
  auto batch = b.next_batch();
  const auto ms =
      std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() - t0).count();
  ASSERT_EQ(batch.size(), 2u) << "the deadline member rides in the batch it forced closed";
  EXPECT_EQ(batch[0].image[0], 1.0f);
  EXPECT_LT(ms, 300.0) << "batch must close near the 25 ms deadline, not the 400 ms budget";
  b.close();
}

TEST(PriorityBatcher, CrossVariantDeadlineFailsFastDuringAnotherGroupsWait) {
  // While the dispatcher waits out the leader group's cutoff, an expiring
  // request bound for a *different* variant must still be failed at its
  // deadline, not whenever that cutoff fires.
  Batcher b(64, std::chrono::microseconds(150'000));  // 150 ms batching budget
  auto leader = b.enqueue(payload(1), req(Priority::kInteractive, "a"));
  auto doomed = b.enqueue(payload(2), req(Priority::kBatch, "b",
                                          std::chrono::microseconds(20'000)));
  std::atomic<bool> failed_promptly{false};
  std::thread probe([&] {
    // Well after the 20 ms deadline, well before the 150 ms cutoff.
    std::this_thread::sleep_for(std::chrono::milliseconds(80));
    failed_promptly.store(doomed.wait_for(std::chrono::seconds(0)) ==
                          std::future_status::ready);
  });
  auto batch = b.next_batch();  // the "a" group, released by its cutoff
  probe.join();
  ASSERT_EQ(batch.size(), 1u);
  EXPECT_EQ(batch[0].variant, "a");
  EXPECT_TRUE(failed_promptly.load());
  EXPECT_THROW(doomed.get(), DeadlineExceededError);
  b.close();
}

// ---------------------------------------------------------------------------
// InferenceEngine over a registry of mock variants
// ---------------------------------------------------------------------------

namespace {

EngineOptions quick_engine_opts() {
  EngineOptions opts;
  opts.threads = 1;
  opts.max_batch = 4;
  opts.max_delay = std::chrono::microseconds(500);
  opts.concurrent_forwards = 1;
  return opts;
}

}  // namespace

TEST(ServingEngine, RoutesRequestsToNamedVariants) {
  auto reg = std::make_shared<ModelRegistry>();
  auto a = std::make_shared<MockServable>("a", /*bias=*/0);
  auto b = std::make_shared<MockServable>("b", /*bias=*/1);
  reg->publish(a);
  reg->publish(b);
  EngineOptions opts = quick_engine_opts();
  opts.default_variant = "a";
  InferenceEngine engine(reg, opts);

  auto fa = engine.submit(payload(3));                                  // default -> a
  auto fb = engine.submit(payload(3), req(Priority::kNormal, "b"));     // explicit -> b
  const Prediction pa = fa.get();
  const Prediction pb = fb.get();
  EXPECT_EQ(pa.label, 3);
  EXPECT_EQ(pa.variant, "a");
  EXPECT_EQ(pb.label, 4);
  EXPECT_EQ(pb.variant, "b");
  EXPECT_THROW(engine.submit(payload(0), req(Priority::kNormal, "nope")), UnknownVariantError);

  const EngineStats st = engine.stats();
  EXPECT_EQ(st.priority(Priority::kNormal).queued, 2u);
  EXPECT_EQ(st.priority(Priority::kNormal).served, 2u);
  EXPECT_EQ(st.priority(Priority::kNormal).rejected, 1u);
}

TEST(ServingEngine, MultiVariantRegistryRequiresExplicitDefault) {
  auto reg = std::make_shared<ModelRegistry>();
  reg->publish(std::make_shared<MockServable>("a"));
  reg->publish(std::make_shared<MockServable>("b"));
  EXPECT_THROW(InferenceEngine(reg, quick_engine_opts()), std::invalid_argument);
  EngineOptions opts = quick_engine_opts();
  opts.default_variant = "missing";
  EXPECT_THROW(InferenceEngine(reg, opts), UnknownVariantError);
  // A sole variant needs no explicit default.
  auto reg1 = std::make_shared<ModelRegistry>();
  reg1->publish(std::make_shared<MockServable>("only"));
  InferenceEngine engine(reg1, quick_engine_opts());
  EXPECT_EQ(engine.default_variant(), "only");
}

TEST(ServingEngine, InteractiveServedBeforeQueuedBatchUnderSaturatedBoundedQueue) {
  auto reg = std::make_shared<ModelRegistry>();
  auto mock = std::make_shared<MockServable>("m", 0, std::chrono::milliseconds(120));
  reg->publish(mock);
  EngineOptions opts = quick_engine_opts();
  opts.max_batch = 2;
  opts.max_delay = std::chrono::microseconds(0);
  opts.max_pending = 6;
  opts.overflow = OverflowPolicy::kReject;
  InferenceEngine engine(reg, opts);

  // Occupy the only forward slot, then saturate the bounded queue with batch
  // traffic and add interactive arrivals behind it.
  auto blocker = engine.submit(payload(99));
  std::this_thread::sleep_for(std::chrono::milliseconds(40));  // blocker in flight
  std::vector<std::future<Prediction>> futs;
  for (int i = 0; i < 4; ++i) futs.push_back(engine.submit(payload(10 + i), req(Priority::kBatch)));
  for (int i = 0; i < 2; ++i)
    futs.push_back(engine.submit(payload(20 + i), req(Priority::kInteractive)));
  EXPECT_THROW(engine.submit(payload(0), req(Priority::kBatch)), QueueFullError);

  blocker.get();
  for (auto& f : futs) f.get();
  const std::vector<float> order = mock->served();
  ASSERT_EQ(order.size(), 7u);
  // After the blocker, both interactive payloads ran before any batch one.
  EXPECT_EQ(order[0], 99.0f);
  EXPECT_EQ(order[1], 20.0f);
  EXPECT_EQ(order[2], 21.0f);
  for (std::size_t i = 3; i < order.size(); ++i) EXPECT_GE(order[i], 10.0f);
  EXPECT_LT(order[3], 20.0f);

  const EngineStats st = engine.stats();
  EXPECT_EQ(st.priority(Priority::kInteractive).served, 2u);
  EXPECT_EQ(st.priority(Priority::kBatch).served, 4u);
  EXPECT_EQ(st.priority(Priority::kBatch).rejected, 1u);
}

TEST(ServingEngine, ExpiredDeadlineFailsTypedWithoutRunningTheForward) {
  auto reg = std::make_shared<ModelRegistry>();
  auto mock = std::make_shared<MockServable>("m", 0, std::chrono::milliseconds(150));
  reg->publish(mock);
  EngineOptions opts = quick_engine_opts();
  opts.max_batch = 1;
  opts.max_delay = std::chrono::microseconds(0);
  InferenceEngine engine(reg, opts);

  auto blocker = engine.submit(payload(1));
  std::this_thread::sleep_for(std::chrono::milliseconds(30));  // blocker in flight
  // Expires long before the blocker's 150 ms forward frees the slot.
  auto doomed = engine.submit(payload(2), req(Priority::kInteractive, {},
                                              std::chrono::microseconds(5'000)));
  EXPECT_THROW(doomed.get(), DeadlineExceededError);
  EXPECT_EQ(blocker.get().label, 1);
  // Give the dispatcher a beat, then assert the dropped payload never ran.
  const std::vector<float> served = mock->served();
  for (float v : served) EXPECT_NE(v, 2.0f);
  const EngineStats st = engine.stats();
  EXPECT_EQ(st.priority(Priority::kInteractive).deadline_dropped, 1u);
  EXPECT_EQ(st.priority(Priority::kInteractive).served, 0u);
  EXPECT_EQ(st.priority(Priority::kInteractive).queued, 1u);
}

TEST(ServingEngine, PredictBatchAndEvaluatePickVariants) {
  auto reg = std::make_shared<ModelRegistry>();
  reg->publish(std::make_shared<MockServable>("a", /*bias=*/0));
  reg->publish(std::make_shared<MockServable>("b", /*bias=*/1));
  EngineOptions opts = quick_engine_opts();
  opts.default_variant = "a";
  InferenceEngine engine(reg, opts);

  nn::Tensor x({2, MockServable::kInputDim});
  x.at(0, 0) = 5.0f;
  x.at(1, 0) = 6.0f;
  EXPECT_EQ(engine.predict_batch(x), (std::vector<int>{5, 6}));
  EXPECT_EQ(engine.predict_batch(x, "b"), (std::vector<int>{6, 7}));
  EXPECT_THROW(engine.predict_batch(x, "nope"), UnknownVariantError);
}

// ---------------------------------------------------------------------------
// ViT servable adapters — one trained model, four fidelity variants
// ---------------------------------------------------------------------------

namespace {

vit::VitConfig tiny_topology() {
  vit::VitConfig cfg;
  cfg.image_size = 16;
  cfg.patch_size = 8;  // 4 tokens
  cfg.dim = 16;
  cfg.layers = 1;
  cfg.heads = 2;
  cfg.mlp_ratio = 2;
  cfg.classes = 4;
  return cfg;
}

vit::ScInferenceConfig tiny_sc_config() {
  vit::ScInferenceConfig cfg;
  cfg.use_sc_softmax = true;
  cfg.use_sc_gelu = true;
  cfg.gelu_bsl = 8;
  cfg.gelu_range = 6.0;
  return cfg;
}

/// A W2A2-calibrated tiny model (one eval forward latches the LSQ steps and
/// the BN running stats stay at init — enough for bit-exactness tests).
vit::VisionTransformer calibrated_model(const vit::VitConfig& top, std::uint64_t seed,
                                        const nn::Tensor& calib) {
  vit::VisionTransformer model(top, seed);
  model.apply_precision(vit::PrecisionSpec::w2a2r16());
  (void)model.forward(calib, /*training=*/false);
  return model;
}

}  // namespace

TEST(VitServables, CloneForServingIsBitExactWithSourceModel) {
  const vit::VitConfig top = tiny_topology();
  const vit::Dataset data = vit::make_synthetic_vision(8, top.classes, 71, top.image_size);
  std::vector<int> idx(static_cast<std::size_t>(data.size()));
  std::iota(idx.begin(), idx.end(), 0);
  const vit::Batch all = vit::take_batch(data, idx);
  vit::VisionTransformer model = calibrated_model(top, 61, all.images);

  const std::unique_ptr<vit::VisionTransformer> clone = model.clone_for_serving();
  EXPECT_EQ(clone->precision().name(), model.precision().name());
  const nn::Tensor ref = static_cast<const vit::VisionTransformer&>(model).infer(all.images);
  const nn::Tensor got = static_cast<const vit::VisionTransformer&>(*clone).infer(all.images);
  ASSERT_EQ(got.shape(), ref.shape());
  for (std::size_t i = 0; i < ref.size(); ++i) ASSERT_EQ(got[i], ref[i]) << "logit " << i;
}

TEST(VitServables, PackedTernaryAdapterMatchesSourceAndFp32Differs) {
  const vit::VitConfig top = tiny_topology();
  const vit::Dataset data = vit::make_synthetic_vision(6, top.classes, 72, top.image_size);
  std::vector<int> idx(static_cast<std::size_t>(data.size()));
  std::iota(idx.begin(), idx.end(), 0);
  const vit::Batch all = vit::take_batch(data, idx);
  vit::VisionTransformer model = calibrated_model(top, 62, all.images);

  const auto packed = vit::make_packed_ternary_servable(model, "w2a2");
  EXPECT_EQ(packed->input_dim(), top.channels * top.image_size * top.image_size);
  EXPECT_EQ(packed->output_dim(), top.classes);
  const nn::Tensor ref = static_cast<const vit::VisionTransformer&>(model).infer(all.images);
  const nn::Tensor got = packed->infer(all.images);
  for (std::size_t i = 0; i < ref.size(); ++i) ASSERT_EQ(got[i], ref[i]) << "logit " << i;

  const auto fp32 = vit::make_fp32_servable(model, "fp32");
  const nn::Tensor fp = fp32->infer(all.images);
  ASSERT_EQ(fp.shape(), ref.shape());
  bool any_diff = false;
  for (std::size_t i = 0; i < ref.size(); ++i)
    if (fp[i] != ref[i]) any_diff = true;
  EXPECT_TRUE(any_diff) << "stripping fake-quantization must change the logits";

  // The adapters cloned: the source model's hooks / precision are untouched.
  EXPECT_EQ(model.precision().name(), vit::PrecisionSpec::w2a2r16().name());

  vit::VisionTransformer fp_model(top, /*seed=*/63);
  EXPECT_THROW(vit::make_packed_ternary_servable(fp_model), std::invalid_argument);
}

TEST(VitServables, ScAdapterMatchesInPlaceEngineAndLeavesSourceHookFree) {
  const vit::VitConfig top = tiny_topology();
  const vit::Dataset data = vit::make_synthetic_vision(16, top.classes, 73, top.image_size);
  vit::VisionTransformer model(top, /*seed=*/64);
  const vit::ScInferenceConfig cfg = tiny_sc_config();

  // Reference: the back-compat single-model engine (hooks on `model`).
  EngineOptions opts = quick_engine_opts();
  double ref_acc;
  {
    InferenceEngine ref_engine(model, cfg, opts);
    ref_acc = ref_engine.evaluate(data);
  }

  // Cloned SC adapters (cached and emulated) under the registry engine.
  auto reg = std::make_shared<ModelRegistry>();
  vit::ScServableOptions sopts;
  sopts.threads = 1;
  reg->publish(vit::make_sc_servable(model, cfg, sopts, "sc-lut"));
  sopts.use_tf_cache = false;
  reg->publish(vit::make_sc_servable(model, cfg, sopts, "sc-emu"));
  reg->publish(vit::make_fp32_servable(model, "fp32"));
  EngineOptions ropts = quick_engine_opts();
  ropts.default_variant = "sc-lut";
  InferenceEngine engine(reg, ropts);
  EXPECT_EQ(engine.evaluate(data, 128, "sc-lut"), ref_acc);
  EXPECT_EQ(engine.evaluate(data, 128, "sc-emu"), ref_acc);

  // The clones never touched the source model's hooks: a plain evaluate is
  // repeatable and hook-free.
  EXPECT_EQ(vit::evaluate(model, data), vit::evaluate(model, data));
}

TEST(VitServables, HotSwapRefreezesWithoutChangingResults) {
  const vit::VitConfig top = tiny_topology();
  const vit::Dataset data = vit::make_synthetic_vision(8, top.classes, 74, top.image_size);
  std::vector<int> idx(static_cast<std::size_t>(data.size()));
  std::iota(idx.begin(), idx.end(), 0);
  const vit::Batch all = vit::take_batch(data, idx);
  vit::VisionTransformer model = calibrated_model(top, 65, all.images);

  auto reg = std::make_shared<ModelRegistry>();
  reg->publish(vit::make_packed_ternary_servable(model, "m"));
  InferenceEngine engine(reg, quick_engine_opts());
  const std::vector<int> before = engine.predict_batch(all.images);
  // Re-publish a freshly cloned servable (new frozen snapshots, same
  // weights): generation bumps, results stay bit-identical.
  reg->publish(vit::make_packed_ternary_servable(model, "m"));
  EXPECT_EQ(reg->generation("m"), 2u);
  EXPECT_EQ(engine.predict_batch(all.images), before);
}
