// Unit tests for naive selective interconnect units.

#include <gtest/gtest.h>

#include <cmath>

#include "sc/gate_si.h"  // gelu_exact
#include "sc/si.h"

using namespace ascend::sc;

namespace {
double relu(double x) { return x > 0 ? x : 0.0; }
double sigmoid(double x) { return 1.0 / (1.0 + std::exp(-x)); }
}  // namespace

TEST(Si, ReluSynthesisIsExactOnGrid) {
  const auto si = SelectiveInterconnect::synthesize_monotone(relu, 16, 16, 0.25, 0.25);
  for (int n = 0; n <= 16; ++n) {
    const double x = 0.25 * (n - 8);
    EXPECT_NEAR(si.transfer(x), relu(x), 0.125 + 1e-9);
  }
}

TEST(Si, SigmoidSynthesisMonotone) {
  const auto si = SelectiveInterconnect::synthesize_monotone(sigmoid, 16, 8, 0.5, 0.125);
  double prev = -1e9;
  for (int n = 0; n <= 16; ++n) {
    const ThermValue in{n, 16, 0.5};
    const double y = si.apply(in).value();
    EXPECT_GE(y, prev);
    prev = y;
  }
}

TEST(Si, NonMonotoneTargetThrows) {
  EXPECT_THROW(SelectiveInterconnect::synthesize_monotone(gelu_exact, 16, 8, 0.5, 0.05),
               std::invalid_argument);
}

TEST(Si, BitLevelIsPureWiring) {
  const auto si = SelectiveInterconnect::synthesize_monotone(relu, 8, 8, 0.5, 0.5);
  for (int n = 0; n <= 8; ++n) {
    const ThermStream in = ThermStream::from_value(ThermValue{n, 8, 0.5});
    const ThermStream out = si.apply(in);
    const ThermValue out_c = si.apply(in.to_value());
    EXPECT_EQ(out.ones(), out_c.ones);
    EXPECT_EQ(out.length(), 8);
  }
}

TEST(Si, TableValidation) {
  EXPECT_THROW(SelectiveInterconnect(4, 2, 1, 1, {0, 1, 0, 1, 2}), std::invalid_argument);  // dips
  EXPECT_THROW(SelectiveInterconnect(4, 2, 1, 1, {0, 1}), std::invalid_argument);  // wrong size
  EXPECT_THROW(SelectiveInterconnect(4, 2, 1, 1, {0, 1, 2, 3, 3}), std::invalid_argument);  // > Lout
}

TEST(SiBestMonotone, MatchesExactSynthesisForMonotoneTargets) {
  const auto a = SelectiveInterconnect::synthesize_monotone(sigmoid, 12, 8, 0.5, 0.125);
  const auto b = SelectiveInterconnect::synthesize_best_monotone(sigmoid, 12, 8, 0.5, 0.125);
  EXPECT_EQ(a.table(), b.table());
}

TEST(SiBestMonotone, GeluNegativeRangeFlattened) {
  // Naive SI on GELU (Fig. 2(c)): the fit is monotone, so the dip around
  // x ~ -0.75 cannot be represented and the negative range error is large
  // compared to gate-assisted SI.
  const auto si = SelectiveInterconnect::synthesize_best_monotone(gelu_exact, 16, 8, 0.4375, 0.05);
  double prev = -1e9;
  for (int n = 0; n <= 16; ++n) {
    const double y = si.apply(ThermValue{n, 16, 0.4375}).value();
    EXPECT_GE(y, prev - 1e-12);
    prev = y;
  }
  // The monotone fit must be strictly worse than GELU's dip at the minimum.
  const double at_min = si.transfer(-0.75);
  EXPECT_GT(at_min, gelu_exact(-0.75) + 0.05);
}

TEST(SiBestMonotone, PavReducesToMeanOnViolations) {
  // A strictly decreasing target collapses to one pooled block = its mean.
  const auto si =
      SelectiveInterconnect::synthesize_best_monotone([](double x) { return -x; }, 8, 8, 0.5, 0.5);
  const int first = si.table().front();
  for (int v : si.table()) EXPECT_EQ(v, first);
}
